(* The optimizer-pass pipeline: per-pass differential semantics, the
   strength-reduction retirement property, pass-blamed diagnostics and
   the codegen RMW address-materialization fix. *)

open Wn_workloads

let passes_without name =
  let all = Wn_compiler.Compile.all_passes in
  match name with
  | "constfold" -> { all with Wn_compiler.Compile.constfold = false }
  | "strength-reduce" ->
      { all with Wn_compiler.Compile.strength_reduce = false }
  | "licm" -> { all with Wn_compiler.Compile.licm = false }
  | "addr-cse" -> { all with Wn_compiler.Compile.addr_cse = false }
  | _ -> invalid_arg "passes_without"

let optional_passes = [ "constfold"; "strength-reduce"; "licm"; "addr-cse" ]

let run_once build inputs =
  let machine = Wn_core.Runner.machine build in
  Wn_core.Runner.load_sample build machine inputs;
  let o = Wn_core.Runner.run_always_on build machine in
  (o, Wn_core.Runner.output build machine)

(* ---------------- per-pass differential harness ----------------

   For every workload and every optional pass: the always-on executor
   outcome with the pass enabled must be semantics-preserving vs the
   same build with the pass disabled — bit-identical output, same
   completion and skim status — and never cost more active cycles. *)

let test_differential () =
  List.iter
    (fun (w : Workload.t) ->
      let cfg = { Workload.bits = 8; provisioned = true } in
      let rng = Wn_util.Rng.create 7 in
      let inputs = w.Workload.fresh_inputs rng in
      let on = Wn_core.Runner.build w cfg in
      let o_on, out_on = run_once on inputs in
      List.iter
        (fun pass ->
          let off =
            Wn_core.Runner.build ~passes:(passes_without pass) w cfg
          in
          let o_off, out_off = run_once off inputs in
          let ctx = Printf.sprintf "%s without %s" w.Workload.name pass in
          if out_on <> out_off then
            Alcotest.failf "%s: outputs diverge" ctx;
          Alcotest.(check bool)
            (ctx ^ ": completed agrees")
            o_off.Wn_runtime.Executor.completed
            o_on.Wn_runtime.Executor.completed;
          Alcotest.(check bool)
            (ctx ^ ": skimmed agrees")
            o_off.Wn_runtime.Executor.skimmed o_on.Wn_runtime.Executor.skimmed;
          if
            o_on.Wn_runtime.Executor.active_cycles
            > o_off.Wn_runtime.Executor.active_cycles
          then
            Alcotest.failf "%s: enabling the pass cost cycles (%d > %d)" ctx
              o_on.Wn_runtime.Executor.active_cycles
              o_off.Wn_runtime.Executor.active_cycles)
        optional_passes)
    (Suite.extended Workload.Small)

(* Under a scripted intermittent trace the optimized and unoptimized
   builds must both finish the task, produce the same output as their
   own always-on run (completion means full precision was reached), and
   the optimizer must not add outages. *)
let test_scripted_trace () =
  let w = Suite.find Workload.Small "MatAdd" in
  let cfg = { Workload.bits = 8; provisioned = true } in
  let rng = Wn_util.Rng.create 7 in
  let inputs = w.Workload.fresh_inputs rng in
  let intermittent build =
    let trace =
      Wn_power.Trace.square ~on_ms:3 ~off_ms:30 ~power:2e-3 ~duration_s:4.0
    in
    let supply =
      Wn_power.Supply.create ~trace
        ~capacitor:(Wn_power.Capacitor.create ()) ()
    in
    let machine = Wn_core.Runner.machine build in
    Wn_core.Runner.load_sample build machine inputs;
    let o =
      Wn_runtime.Executor.run
        ~policy:(Wn_runtime.Executor.Clank Wn_runtime.Executor.default_clank)
        ~machine ~supply ()
    in
    (o, Wn_core.Runner.output build machine)
  in
  let on = Wn_core.Runner.build w cfg in
  let off = Wn_core.Runner.build ~passes:Wn_compiler.Compile.no_passes w cfg in
  let o_on, out_on = intermittent on in
  let o_off, out_off = intermittent off in
  Alcotest.(check bool) "optimized completes" true
    o_on.Wn_runtime.Executor.completed;
  Alcotest.(check bool) "unoptimized completes" true
    o_off.Wn_runtime.Executor.completed;
  (* a task that completed without a skim jump carries the same output
     its always-on run does; skim completion is legitimately
     approximate, so only the quality has to stay sane *)
  (if not o_on.Wn_runtime.Executor.skimmed then
     let _, always_on = run_once on inputs in
     if out_on <> always_on then
       Alcotest.fail "optimized intermittent output differs from always-on");
  (if not o_off.Wn_runtime.Executor.skimmed then
     let _, always_off = run_once off inputs in
     if out_off <> always_off then
       Alcotest.fail "unoptimized intermittent output differs from always-on");
  let golden = w.Workload.golden inputs in
  let nrmse out = Wn_core.Runner.nrmse_pct ~reference:golden out in
  if not (Float.is_finite (nrmse out_on) && nrmse out_on < 50.0) then
    Alcotest.failf "optimized quality collapsed (NRMSE %.2f%%)"
      (nrmse out_on);
  if not (Float.is_finite (nrmse out_off) && nrmse out_off < 50.0) then
    Alcotest.failf "unoptimized quality collapsed (NRMSE %.2f%%)"
      (nrmse out_off);
  if
    o_on.Wn_runtime.Executor.outage_count
    > o_off.Wn_runtime.Executor.outage_count
  then
    Alcotest.failf "optimizer added outages (%d > %d)"
      o_on.Wn_runtime.Executor.outage_count
      o_off.Wn_runtime.Executor.outage_count

(* ---------------- strength reduction retires strictly fewer ---------------- *)

let sr_only =
  { Wn_compiler.Compile.no_passes with Wn_compiler.Compile.strength_reduce = true }

let retired_of source passes =
  let options =
    { Wn_compiler.Compile.precise with Wn_compiler.Compile.passes = passes }
  in
  let compiled = Wn_compiler.Compile.compile_source ~options source in
  let mem =
    Wn_mem.Memory.create
      ~size:(compiled.Wn_compiler.Compile.data_bytes + 64)
  in
  let machine =
    Wn_machine.Machine.create
      ~program:compiled.Wn_compiler.Compile.program ~mem ()
  in
  let o =
    Wn_runtime.Executor.run ~machine ~supply:(Wn_power.Supply.always_on ()) ()
  in
  if not o.Wn_runtime.Executor.completed then failwith "did not complete";
  o.Wn_runtime.Executor.retired

let prop_sr_strictly_fewer =
  QCheck.Test.make ~count:60
    ~name:"strength-reduced loops retire strictly fewer instructions"
    QCheck.(pair (int_range 1 6) (int_range 2 8))
    (fun (rows, cols) ->
      let n = rows * cols in
      let source =
        Printf.sprintf
          "uint32 a[%d];\nuint32 x[%d];\n\n\
           kernel walk() {\n\
          \  for (i = 0; i < %d; i += 1) {\n\
          \    for (j = 0; j < %d; j += 1) {\n\
          \      x[i * %d + j] = a[i * %d + j] + 1;\n\
          \    }\n\
          \  }\n\
           }\n"
          n n rows cols cols cols
      in
      retired_of source sr_only
      < retired_of source Wn_compiler.Compile.no_passes)

(* ---------------- pass-blamed diagnostics ----------------

   Regression for the pass-name threading: a transform failure must
   name its originating pass in the raised message. *)

let test_error_names_pass () =
  (* vector_loads on a benchmark whose asp arrays carry no asv pragmas
     fails inside the lowering pass *)
  let w = Suite.find Workload.Small "Conv2d" in
  let source = w.Workload.source { Workload.bits = 8; provisioned = true } in
  match
    Wn_compiler.Compile.compile_source
      ~options:Wn_compiler.Compile.anytime_vector_loads source
  with
  | _ -> Alcotest.fail "expected the lowering pass to refuse vector_loads"
  | exception Wn_compiler.Compile.Error msg ->
      let prefix = "pass lower-anytime:" in
      let n = String.length prefix in
      Alcotest.(check bool)
        (Printf.sprintf "%S names the pass" msg)
        true
        (String.length msg >= n && String.sub msg 0 n = prefix)

(* ---------------- codegen RMW address materialization ----------------

   [x[i] op= e] must compute the element address once and use it for
   both the load and the store — independent of addr-cse. *)

let count_insns (compiled : Wn_compiler.Compile.t) p =
  Array.fold_left
    (fun acc i -> if p i then acc + 1 else acc)
    0 compiled.Wn_compiler.Compile.program

let test_rmw_single_address () =
  let source =
    "uint32 x[16];\n\nkernel bump() {\n  x[3] += 5;\n}\n"
  in
  let options =
    { Wn_compiler.Compile.precise with
      Wn_compiler.Compile.passes = Wn_compiler.Compile.no_passes }
  in
  let compiled = Wn_compiler.Compile.compile_source ~options source in
  (* the element address constant appears in exactly one materializing
     instruction: the old desugared path built it twice *)
  let addr =
    (Wn_compiler.Compile.symbol compiled "x").Wn_compiler.Compile.sym_addr
    + (3 * 4)
  in
  let materializes = function
    | Wn_isa.Instr.Mov_imm (_, imm) -> imm land 0xFFFF = addr land 0xFFFF
    | _ -> false
  in
  Alcotest.(check int) "address materialized once" 1
    (count_insns compiled materializes);
  (* and the whole statement stays tight: load, modify, store around it *)
  let is_mem = function
    | Wn_isa.Instr.Ldr _ | Wn_isa.Instr.Str _ | Wn_isa.Instr.Ldr_reg _
    | Wn_isa.Instr.Str_reg _ ->
        true
    | _ -> false
  in
  Alcotest.(check int) "one load, one store" 2 (count_insns compiled is_mem)

(* A loop-carried RMW keeps the same shape with a register index. *)
let test_rmw_indexed_instruction_count () =
  (* the pad array keeps x's base address nonzero, so a Mov_imm of the
     base is distinguishable from the loop counter's init *)
  let source =
    "uint32 pad[4];\n\
     uint32 x[16];\n\n\
     kernel bump() {\n\
    \  for (i = 0; i < 16; i += 1) {\n\
    \    x[i] += 1;\n\
    \  }\n\
     }\n"
  in
  let options =
    { Wn_compiler.Compile.precise with
      Wn_compiler.Compile.passes = Wn_compiler.Compile.no_passes }
  in
  let compiled = Wn_compiler.Compile.compile_source ~options source in
  let is_mem = function
    | Wn_isa.Instr.Ldr _ | Wn_isa.Instr.Str _ | Wn_isa.Instr.Ldr_reg _
    | Wn_isa.Instr.Str_reg _ ->
        true
    | _ -> false
  in
  Alcotest.(check int) "one load and one store in the loop" 2
    (count_insns compiled is_mem);
  (* the base address is built once per iteration, not once per access *)
  let base =
    (Wn_compiler.Compile.symbol compiled "x").Wn_compiler.Compile.sym_addr
  in
  let materializes_base = function
    | Wn_isa.Instr.Mov_imm (_, imm) -> imm = base
    | _ -> false
  in
  Alcotest.(check int) "base materialized once" 1
    (count_insns compiled materializes_base)

(* ---------------- pass bookkeeping ---------------- *)

let test_pass_names () =
  Alcotest.(check (list string))
    "full pipeline"
    [ "lower-anytime"; "constfold"; "strength-reduce"; "licm"; "codegen";
      "addr-cse" ]
    (Wn_compiler.Compile.pass_names Wn_compiler.Compile.anytime);
  Alcotest.(check (list string))
    "spine only"
    [ "lower-anytime"; "codegen" ]
    (Wn_compiler.Compile.pass_names
       { Wn_compiler.Compile.anytime with
         Wn_compiler.Compile.passes = Wn_compiler.Compile.no_passes })

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_dump_after () =
  let w = Suite.find Workload.Small "MatAdd" in
  let source = w.Workload.source { Workload.bits = 8; provisioned = true } in
  let compiled =
    Wn_compiler.Compile.compile_source ~dump_after:"strength-reduce" source
  in
  (match compiled.Wn_compiler.Compile.dumps with
  | [ (name, text) ] ->
      Alcotest.(check string) "dump names the pass" "strength-reduce" name;
      Alcotest.(check bool) "dump shows byte-offset indices" true
        (contains text "@")
  | l -> Alcotest.failf "expected one dump, got %d" (List.length l));
  Alcotest.check_raises "unknown pass"
    (Wn_compiler.Compile.Error
       "dump-after: unknown or disabled pass \"frobnicate\"; this build \
        runs: lower-anytime, constfold, strength-reduce, licm, codegen, \
        addr-cse")
    (fun () ->
      ignore (Wn_compiler.Compile.compile_source ~dump_after:"frobnicate" source))

(* ---------------- unit checks for the small passes ---------------- *)

let test_constfold_unit () =
  let open Wn_lang.Ast in
  let fold = Wn_compiler.Constfold.expr in
  (match fold (Binop (Mul, Binop (Add, Int 2, Int 3), Int 4)) with
  | Int 20 -> ()
  | e -> Alcotest.failf "(2+3)*4 folded to %s" (Format.asprintf "%a" pp_expr e));
  (* comparisons stay unfolded: codegen needs them at If-cond top *)
  (match fold (Binop (Lt, Int 1, Int 2)) with
  | Binop (Lt, Int 1, Int 2) -> ()
  | e -> Alcotest.failf "1<2 folded to %s" (Format.asprintf "%a" pp_expr e));
  (* Shr sign-extends like the generated ASR *)
  (match fold (Binop (Shr, Int 0x80000000, Int 4)) with
  | Int 0xF8000000 -> ()
  | e -> Alcotest.failf "asr folded to %s" (Format.asprintf "%a" pp_expr e))

let test_addr_cse_unit () =
  let open Wn_isa in
  let r5 = Reg.r 5 in
  let items imm =
    [
      Asm.I (Instr.Mov_imm (r5, imm));
      Asm.I (Instr.Mov_imm (r5, imm));
      Asm.Label "l";
      Asm.I (Instr.Mov_imm (r5, imm));
    ]
  in
  match Wn_compiler.Addr_cse.run (items 100) with
  | [ Asm.I (Instr.Mov_imm _); Asm.Label "l"; Asm.I (Instr.Mov_imm _) ] -> ()
  | l -> Alcotest.failf "unexpected addr-cse result (%d items)" (List.length l)

let test_licm_unit () =
  let open Wn_lang.Ast in
  let loop =
    For
      {
        var = "i";
        lo = Int 0;
        hi = Binop (Add, Var "n", Int 1);
        step = 1;
        body = [ Assign (Larr ("x", Var "i"), Int 0) ];
      }
  in
  match Wn_compiler.Licm.run [ Decl ("n", Int 4); loop ] with
  | [ Decl ("n", _); Decl (h, Binop (Add, Var "n", Int 1)); For l ]
    when l.hi = Var h ->
      ()
  | l ->
      Alcotest.failf "bound not hoisted: %s"
        (Format.asprintf "%a" pp_block l)

let () =
  Alcotest.run "wn.passes"
    [
      ( "differential",
        [
          Alcotest.test_case "per-pass outputs identical" `Quick
            test_differential;
          Alcotest.test_case "scripted trace" `Quick test_scripted_trace;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "errors name their pass" `Quick
            test_error_names_pass;
          Alcotest.test_case "pass names" `Quick test_pass_names;
          Alcotest.test_case "dump-after" `Quick test_dump_after;
        ] );
      ( "codegen-rmw",
        [
          Alcotest.test_case "single address per statement" `Quick
            test_rmw_single_address;
          Alcotest.test_case "indexed rmw stays tight" `Quick
            test_rmw_indexed_instruction_count;
        ] );
      ( "units",
        [
          Alcotest.test_case "constfold" `Quick test_constfold_unit;
          Alcotest.test_case "addr-cse" `Quick test_addr_cse_unit;
          Alcotest.test_case "licm" `Quick test_licm_unit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_sr_strictly_fewer ] );
    ]
