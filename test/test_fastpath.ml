(* Differential tests for the simulator fast path: the predecoded
   allocation-free [Machine.step_fast] against the reference
   interpreter [Machine.step_reference], lockstep over the full
   workload suite; the executor's [Fast] engine against [Compat] under
   every intermittency policy; and the zero-allocation guarantee
   itself via [Gc.minor_words]. *)

open Wn_isa
open Wn_workloads
open Wn_machine
open Wn_runtime

let wcfg = { Workload.bits = 8; provisioned = true }

let machine_configs =
  [
    ("baseline", Machine.default_config);
    ("memo+zs", { Machine.memo_entries = Some 16; Machine.zero_skip = true });
  ]

let max_lockstep_steps = 500_000

(* ---------------- machine-level lockstep ---------------- *)

let check_step_effects name step (r : Machine.step_result) fast =
  let fail fmt = Alcotest.failf ("%s step %d: " ^^ fmt) name step in
  if r.Machine.cycles <> Machine.last_cycles fast then
    fail "cycles %d vs %d" r.Machine.cycles (Machine.last_cycles fast);
  let ra, rb =
    match r.Machine.read with
    | Some a -> (a.Machine.addr, a.Machine.bytes)
    | None -> (-1, 0)
  in
  if ra <> Machine.last_read_addr fast then
    fail "read addr %d vs %d" ra (Machine.last_read_addr fast);
  if ra >= 0 && rb <> Machine.last_read_bytes fast then
    fail "read bytes %d vs %d" rb (Machine.last_read_bytes fast);
  let wa, wb =
    match r.Machine.wrote with
    | Some a -> (a.Machine.addr, a.Machine.bytes)
    | None -> (-1, 0)
  in
  if wa <> Machine.last_wrote_addr fast then
    fail "wrote addr %d vs %d" wa (Machine.last_wrote_addr fast);
  if wa >= 0 && wb <> Machine.last_wrote_bytes fast then
    fail "wrote bytes %d vs %d" wb (Machine.last_wrote_bytes fast);
  if r.Machine.memo_hit <> Machine.last_memo_hit fast then
    fail "memo_hit %b vs %b" r.Machine.memo_hit (Machine.last_memo_hit fast);
  if r.Machine.zero_skipped <> Machine.last_zero_skipped fast then
    fail "zero_skipped %b vs %b" r.Machine.zero_skipped
      (Machine.last_zero_skipped fast);
  let skm = match r.Machine.instr with Instr.Skm _ -> true | _ -> false in
  if skm <> Machine.last_was_skm fast then
    fail "skm flag %b vs %b" skm (Machine.last_was_skm fast)

let check_machines_equal name m_ref m_fast =
  let fail fmt = Alcotest.failf ("%s: " ^^ fmt) name in
  if Machine.pc m_ref <> Machine.pc m_fast then
    fail "pc %d vs %d" (Machine.pc m_ref) (Machine.pc m_fast);
  if Machine.flags m_ref <> Machine.flags m_fast then fail "flags differ";
  if Machine.halted m_ref <> Machine.halted m_fast then fail "halt differs";
  if Machine.skim_target m_ref <> Machine.skim_target m_fast then
    fail "skim target differs";
  for i = 0 to Reg.count - 1 do
    let r = Reg.r i in
    if Machine.reg m_ref r <> Machine.reg m_fast r then
      fail "r%d: %d vs %d" i (Machine.reg m_ref r) (Machine.reg m_fast r)
  done;
  if
    Machine.instructions_retired m_ref <> Machine.instructions_retired m_fast
  then
    fail "retired %d vs %d"
      (Machine.instructions_retired m_ref)
      (Machine.instructions_retired m_fast);
  if Machine.cycles_executed m_ref <> Machine.cycles_executed m_fast then
    fail "cycles %d vs %d"
      (Machine.cycles_executed m_ref)
      (Machine.cycles_executed m_fast);
  if Machine.wn_instructions m_ref <> Machine.wn_instructions m_fast then
    fail "wn retired differ";
  (match (Machine.memo m_ref, Machine.memo m_fast) with
  | Some a, Some b ->
      if Memo.hits a <> Memo.hits b || Memo.misses a <> Memo.misses b then
        fail "memo counters (%d,%d) vs (%d,%d)" (Memo.hits a) (Memo.misses a)
          (Memo.hits b) (Memo.misses b)
  | None, None -> ()
  | _ -> fail "memo presence differs");
  if
    Wn_mem.Memory.snapshot (Machine.mem m_ref)
    <> Wn_mem.Memory.snapshot (Machine.mem m_fast)
  then fail "memory images differ"

let lockstep_workload wname (cfg_name, mcfg) () =
  let w = Suite.find Workload.Small wname in
  let b = Wn_core.Runner.build w wcfg in
  let m_ref = Wn_core.Runner.machine ~machine_config:mcfg b in
  let m_fast = Wn_core.Runner.machine ~machine_config:mcfg b in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 42) in
  Wn_core.Runner.load_sample b m_ref inputs;
  Wn_core.Runner.load_sample b m_fast inputs;
  let name = Printf.sprintf "%s/%s" wname cfg_name in
  let steps = ref 0 in
  while (not (Machine.halted m_ref)) && !steps < max_lockstep_steps do
    incr steps;
    let r = Machine.step_reference m_ref in
    Machine.step_fast m_fast;
    check_step_effects name !steps r m_fast;
    if Machine.pc m_ref <> Machine.pc m_fast then
      Alcotest.failf "%s step %d: pc %d vs %d" name !steps (Machine.pc m_ref)
        (Machine.pc m_fast)
  done;
  check_machines_equal name m_ref m_fast;
  if !steps = 0 then Alcotest.fail "workload executed no instructions"

(* ---------------- machine-level: step_block vs reference ----------------

   The block engine retires whole fused runs per dispatch, so the
   lockstep drives the reference interpreter forward to the block
   machine's retirement count after every dispatch and compares
   architectural state there — every block boundary is checked, and
   per-instruction fallback steps degenerate to the per-step lockstep
   above. *)

let lockstep_block_workload wname (cfg_name, mcfg) () =
  let w = Suite.find Workload.Small wname in
  let b = Wn_core.Runner.build w wcfg in
  let m_ref = Wn_core.Runner.machine ~machine_config:mcfg b in
  let m_blk = Wn_core.Runner.machine ~machine_config:mcfg b in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 42) in
  Wn_core.Runner.load_sample b m_ref inputs;
  Wn_core.Runner.load_sample b m_blk inputs;
  let name = Printf.sprintf "%s/%s/block" wname cfg_name in
  let dispatches = ref 0 in
  let fused_dispatches = ref 0 in
  while (not (Machine.halted m_blk)) && !dispatches < max_lockstep_steps do
    incr dispatches;
    let before = Machine.instructions_retired m_blk in
    Machine.step_block m_blk;
    let after = Machine.instructions_retired m_blk in
    if after - before > 1 then incr fused_dispatches;
    for _ = 1 to after - before do
      ignore (Machine.step_reference m_ref)
    done;
    if Machine.pc m_ref <> Machine.pc m_blk then
      Alcotest.failf "%s dispatch %d: pc %d vs %d" name !dispatches
        (Machine.pc m_ref) (Machine.pc m_blk)
  done;
  check_machines_equal name m_ref m_blk;
  if !fused_dispatches = 0 then
    Alcotest.failf "%s: no fused block was ever dispatched" name

(* Fused-run metadata must agree with the planner it was compiled from:
   same runs, same worst-case cycle totals, same load counts. *)
let test_block_table_matches_plan () =
  List.iter
    (fun wname ->
      let w = Suite.find Workload.Small wname in
      let b = Wn_core.Runner.build w wcfg in
      let m = Wn_core.Runner.machine b in
      let program = Machine.program m in
      let plan = Wn_analysis.Fuse.plan ~memoizable:false program in
      List.iter
        (fun (r : Wn_analysis.Fuse.run) ->
          match Machine.block_at m r.Wn_analysis.Fuse.r_first with
          | None ->
              Alcotest.failf "%s: no fused block at pc %d" wname
                r.Wn_analysis.Fuse.r_first
          | Some blk ->
              Alcotest.(check int) "len" r.Wn_analysis.Fuse.r_len
                (Machine.block_len blk);
              Alcotest.(check int) "cycles" r.Wn_analysis.Fuse.r_cycles
                (Machine.block_cycles blk);
              Alcotest.(check int) "loads" r.Wn_analysis.Fuse.r_loads
                (Machine.block_loads blk);
              Alcotest.(check int) "wn" r.Wn_analysis.Fuse.r_wn
                (Machine.block_wn blk))
        plan)
    Suite.names

(* Snapshot/restore round-trip taken mid-run between block dispatches:
   the resumed machine must finish in the same state as the
   uninterrupted one. *)
let test_block_snapshot_roundtrip () =
  let w = Suite.find Workload.Small "Var" in
  let b = Wn_core.Runner.build w wcfg in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 3) in
  let m1 = Wn_core.Runner.machine b in
  Wn_core.Runner.load_sample b m1 inputs;
  (* Uninterrupted block-engine run to halt. *)
  let steps = ref 0 in
  while (not (Machine.halted m1)) && !steps < max_lockstep_steps do
    incr steps;
    Machine.step_block m1
  done;
  (* Interrupted run: snapshot after 40 dispatches, restore into a
     fresh machine, finish under the block engine. *)
  let m2 = Wn_core.Runner.machine b in
  Wn_core.Runner.load_sample b m2 inputs;
  for _ = 1 to 40 do
    Machine.step_block m2
  done;
  let snap = Machine.snapshot m2 in
  let m3 = Wn_core.Runner.machine b in
  Machine.restore m3 snap;
  let steps = ref 0 in
  while (not (Machine.halted m3)) && !steps < max_lockstep_steps do
    incr steps;
    Machine.step_block m3
  done;
  check_machines_equal "Var/block snapshot roundtrip" m1 m3

(* The [step] wrapper must report exactly what [step_reference] does. *)
let test_step_wrapper () =
  let w = Suite.find Workload.Small "Var" in
  let b = Wn_core.Runner.build w wcfg in
  let mcfg = { Machine.memo_entries = Some 16; Machine.zero_skip = true } in
  let m_ref = Wn_core.Runner.machine ~machine_config:mcfg b in
  let m_wrap = Wn_core.Runner.machine ~machine_config:mcfg b in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 7) in
  Wn_core.Runner.load_sample b m_ref inputs;
  Wn_core.Runner.load_sample b m_wrap inputs;
  let steps = ref 0 in
  while (not (Machine.halted m_ref)) && !steps < max_lockstep_steps do
    incr steps;
    let r = Machine.step_reference m_ref in
    let s = Machine.step m_wrap in
    if r <> s then Alcotest.failf "step %d: step_result records differ" !steps
  done;
  check_machines_equal "Var/wrapper" m_ref m_wrap

(* ---------------- executor-level: Fast vs Compat ---------------- *)

let policies =
  [
    ("always_on", Executor.Always_on);
    ("nvp", Executor.Nvp Executor.default_nvp);
    ("clank", Executor.Clank Executor.default_clank);
  ]

let run_with_engine engine b w inputs policy =
  let mcfg = { Machine.memo_entries = Some 16; Machine.zero_skip = true } in
  let m = Wn_core.Runner.machine ~machine_config:mcfg b in
  Wn_core.Runner.load_sample b m inputs;
  let trace =
    Wn_power.Trace.square ~on_ms:3 ~off_ms:30 ~power:2e-3 ~duration_s:4.0
  in
  let supply =
    Wn_power.Supply.create ~trace ~capacitor:(Wn_power.Capacitor.create ()) ()
  in
  let outcome = Executor.run ~policy ~engine ~machine:m ~supply () in
  ignore w;
  (outcome, Wn_mem.Memory.snapshot (Machine.mem m))

let check_outcomes_equal name (o_a, mem_a) (o_b, mem_b) =
  let check_int field a b =
    if a <> b then Alcotest.failf "%s: %s %d vs %d" name field a b
  in
  check_int "wall_cycles" o_a.Executor.wall_cycles o_b.Executor.wall_cycles;
  check_int "active_cycles" o_a.Executor.active_cycles
    o_b.Executor.active_cycles;
  check_int "overhead_cycles" o_a.Executor.overhead_cycles
    o_b.Executor.overhead_cycles;
  check_int "reexecuted" o_a.Executor.reexecuted_instructions
    o_b.Executor.reexecuted_instructions;
  check_int "outages" o_a.Executor.outage_count o_b.Executor.outage_count;
  check_int "checkpoints" o_a.Executor.checkpoint_count
    o_b.Executor.checkpoint_count;
  check_int "retired" o_a.Executor.retired o_b.Executor.retired;
  if o_a.Executor.completed <> o_b.Executor.completed then
    Alcotest.failf "%s: completed differs" name;
  if o_a.Executor.skimmed <> o_b.Executor.skimmed then
    Alcotest.failf "%s: skimmed differs" name;
  if o_a.Executor.first_skim_active <> o_b.Executor.first_skim_active then
    Alcotest.failf "%s: first_skim_active differs" name;
  if mem_a <> mem_b then Alcotest.failf "%s: memory images differ" name

(* All three engines, both builds (anytime with skim points and the
   precise baseline), every policy: identical outcomes and memories. *)
let executor_differential wname ~skim (pname, policy) () =
  let w = Suite.find Workload.Small wname in
  let b = Wn_core.Runner.build ~precise:(not skim) w wcfg in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 11) in
  let fast = run_with_engine Executor.Fast b w inputs policy in
  let block = run_with_engine Executor.Block b w inputs policy in
  let compat = run_with_engine Executor.Compat b w inputs policy in
  let name =
    Printf.sprintf "%s/%s/skim-%s" wname pname (if skim then "on" else "off")
  in
  check_outcomes_equal (name ^ "/block-vs-fast") block fast;
  check_outcomes_equal (name ^ "/compat-vs-fast") compat fast

(* The Always_on batching path: when the supply can never cut power the
   Block engine coalesces supply consumes into one pending counter per
   block; the supply's cycle and energy accounting must come out
   exactly as Fast's per-instruction consume sequence. *)
let coalescing_regression wname () =
  let w = Suite.find Workload.Small wname in
  let b = Wn_core.Runner.build w wcfg in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 13) in
  let run engine =
    let m = Wn_core.Runner.machine b in
    Wn_core.Runner.load_sample b m inputs;
    let supply = Wn_power.Supply.always_on () in
    let o = Executor.run ~policy:Executor.Always_on ~engine ~machine:m ~supply () in
    (o, Wn_power.Supply.now_cycles supply, Wn_power.Supply.energy_consumed supply)
  in
  let o_f, cycles_f, energy_f = run Executor.Fast in
  let o_b, cycles_b, energy_b = run Executor.Block in
  if cycles_f <> cycles_b then
    Alcotest.failf "%s: supply clock %d vs %d cycles" wname cycles_f cycles_b;
  if energy_f <> energy_b then
    Alcotest.failf "%s: energy %.12g vs %.12g J" wname energy_f energy_b;
  if o_f.Executor.wall_cycles <> o_b.Executor.wall_cycles then
    Alcotest.failf "%s: wall cycles differ" wname;
  if o_f.Executor.active_cycles <> o_b.Executor.active_cycles then
    Alcotest.failf "%s: active cycles differ" wname

(* ---------------- zero allocation ---------------- *)

(* ALU / load / store / branch / multiply / SKM steady-state loop that
   cannot halt within the measured window. *)
let alloc_probe_program =
  Asm.assemble_exn
    [
      Asm.I (Instr.Mov_imm (Reg.r 0, 0));
      Asm.I (Instr.Mov_imm (Reg.r 1, 1));
      Asm.I (Instr.Mov_imm (Reg.r 2, 1_000_000));
      Asm.Label "loop";
      Asm.I
        (Instr.Ldr
           { width = Instr.Word; signed = false; rd = Reg.r 3; base = Reg.r 0; off = 0 });
      Asm.I (Instr.Alu (Instr.Add, Reg.r 3, Reg.r 3, Reg.r 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = Reg.r 3; base = Reg.r 0; off = 0 });
      Asm.I (Instr.Mul (Reg.r 4, Reg.r 3, Reg.r 1));
      Asm.I (Instr.Skm "done");
      Asm.I (Instr.Alu (Instr.Sub, Reg.r 2, Reg.r 2, Reg.r 1));
      Asm.I (Instr.Cmp_imm (Reg.r 2, 0));
      Asm.I (Instr.B (Cond.Ne, "loop"));
      Asm.Label "done";
      Asm.I Instr.Halt;
    ]

let test_step_fast_no_alloc () =
  let mem = Wn_mem.Memory.create ~size:256 in
  let config = { Machine.memo_entries = Some 16; Machine.zero_skip = true } in
  let m = Machine.create ~config ~program:alloc_probe_program ~mem () in
  (* Warm up: first executions of every closure, lazy runtime setup. *)
  for _ = 1 to 1_000 do
    Machine.step_fast m
  done;
  (* [Gc.minor_words] itself boxes its float result; measure that
     constant the same way the real measurement pays it, and subtract. *)
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let baseline = b -. a in
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Machine.step_fast m
  done;
  let w1 = Gc.minor_words () in
  let allocated = w1 -. w0 -. baseline in
  if allocated <> 0.0 then
    Alcotest.failf "step_fast allocated %.0f minor words over 10k instructions"
      allocated;
  if Machine.halted m then Alcotest.fail "probe program halted inside window"

(* Block dispatch must stay allocation-free too: the fused table and
   read ring are built once on the first dispatch (inside the warm-up),
   after which executing a block is pure mutation. *)
let test_step_block_no_alloc () =
  let mem = Wn_mem.Memory.create ~size:256 in
  let config = { Machine.memo_entries = Some 16; Machine.zero_skip = true } in
  let m = Machine.create ~config ~program:alloc_probe_program ~mem () in
  for _ = 1 to 1_000 do
    Machine.step_block m
  done;
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let baseline = b -. a in
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Machine.step_block m
  done;
  let w1 = Gc.minor_words () in
  let allocated = w1 -. w0 -. baseline in
  if allocated <> 0.0 then
    Alcotest.failf
      "step_block allocated %.0f minor words over 10k dispatches" allocated;
  if Machine.halted m then Alcotest.fail "probe program halted inside window"

let () =
  let lockstep_cases =
    List.concat_map
      (fun wname ->
        List.map
          (fun (cfg_name, mcfg) ->
            Alcotest.test_case
              (Printf.sprintf "%s %s" wname cfg_name)
              `Quick
              (lockstep_workload wname (cfg_name, mcfg)))
          machine_configs)
      Suite.names
  in
  let block_lockstep_cases =
    List.concat_map
      (fun wname ->
        List.map
          (fun (cfg_name, mcfg) ->
            Alcotest.test_case
              (Printf.sprintf "%s %s" wname cfg_name)
              `Quick
              (lockstep_block_workload wname (cfg_name, mcfg)))
          machine_configs)
      Suite.names
  in
  let executor_cases =
    List.concat_map
      (fun wname ->
        List.concat_map
          (fun skim ->
            List.map
              (fun p ->
                Alcotest.test_case
                  (Printf.sprintf "%s %s skim-%s" wname (fst p)
                     (if skim then "on" else "off"))
                  `Quick
                  (executor_differential wname ~skim p))
              policies)
          [ true; false ])
      [ "Var"; "Home"; "MatAdd" ]
  in
  let coalescing_cases =
    List.map
      (fun wname ->
        Alcotest.test_case wname `Quick (coalescing_regression wname))
      [ "Var"; "MatAdd" ]
  in
  Alcotest.run "wn.fastpath"
    [
      ("machine lockstep", lockstep_cases);
      ("block lockstep", block_lockstep_cases);
      ( "block table",
        [
          Alcotest.test_case "matches fusion plan" `Quick
            test_block_table_matches_plan;
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_block_snapshot_roundtrip;
        ] );
      ( "step wrapper",
        [ Alcotest.test_case "record identical" `Quick test_step_wrapper ] );
      ("executor engines", executor_cases);
      ("always-on coalescing", coalescing_cases);
      ( "allocation",
        [
          Alcotest.test_case "step_fast allocation-free" `Quick
            test_step_fast_no_alloc;
          Alcotest.test_case "step_block allocation-free" `Quick
            test_step_block_no_alloc;
        ] );
    ]
