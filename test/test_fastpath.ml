(* Differential tests for the simulator fast path: the predecoded
   allocation-free [Machine.step_fast] against the reference
   interpreter [Machine.step_reference], lockstep over the full
   workload suite; the executor's [Fast] engine against [Compat] under
   every intermittency policy; and the zero-allocation guarantee
   itself via [Gc.minor_words]. *)

open Wn_isa
open Wn_workloads
open Wn_machine
open Wn_runtime

let wcfg = { Workload.bits = 8; provisioned = true }

let machine_configs =
  [
    ("baseline", Machine.default_config);
    ("memo+zs", { Machine.memo_entries = Some 16; Machine.zero_skip = true });
  ]

let max_lockstep_steps = 500_000

(* ---------------- machine-level lockstep ---------------- *)

let check_step_effects name step (r : Machine.step_result) fast =
  let fail fmt = Alcotest.failf ("%s step %d: " ^^ fmt) name step in
  if r.Machine.cycles <> Machine.last_cycles fast then
    fail "cycles %d vs %d" r.Machine.cycles (Machine.last_cycles fast);
  let ra, rb =
    match r.Machine.read with
    | Some a -> (a.Machine.addr, a.Machine.bytes)
    | None -> (-1, 0)
  in
  if ra <> Machine.last_read_addr fast then
    fail "read addr %d vs %d" ra (Machine.last_read_addr fast);
  if ra >= 0 && rb <> Machine.last_read_bytes fast then
    fail "read bytes %d vs %d" rb (Machine.last_read_bytes fast);
  let wa, wb =
    match r.Machine.wrote with
    | Some a -> (a.Machine.addr, a.Machine.bytes)
    | None -> (-1, 0)
  in
  if wa <> Machine.last_wrote_addr fast then
    fail "wrote addr %d vs %d" wa (Machine.last_wrote_addr fast);
  if wa >= 0 && wb <> Machine.last_wrote_bytes fast then
    fail "wrote bytes %d vs %d" wb (Machine.last_wrote_bytes fast);
  if r.Machine.memo_hit <> Machine.last_memo_hit fast then
    fail "memo_hit %b vs %b" r.Machine.memo_hit (Machine.last_memo_hit fast);
  if r.Machine.zero_skipped <> Machine.last_zero_skipped fast then
    fail "zero_skipped %b vs %b" r.Machine.zero_skipped
      (Machine.last_zero_skipped fast);
  let skm = match r.Machine.instr with Instr.Skm _ -> true | _ -> false in
  if skm <> Machine.last_was_skm fast then
    fail "skm flag %b vs %b" skm (Machine.last_was_skm fast)

let check_machines_equal name m_ref m_fast =
  let fail fmt = Alcotest.failf ("%s: " ^^ fmt) name in
  if Machine.pc m_ref <> Machine.pc m_fast then
    fail "pc %d vs %d" (Machine.pc m_ref) (Machine.pc m_fast);
  if Machine.flags m_ref <> Machine.flags m_fast then fail "flags differ";
  if Machine.halted m_ref <> Machine.halted m_fast then fail "halt differs";
  if Machine.skim_target m_ref <> Machine.skim_target m_fast then
    fail "skim target differs";
  for i = 0 to Reg.count - 1 do
    let r = Reg.r i in
    if Machine.reg m_ref r <> Machine.reg m_fast r then
      fail "r%d: %d vs %d" i (Machine.reg m_ref r) (Machine.reg m_fast r)
  done;
  if
    Machine.instructions_retired m_ref <> Machine.instructions_retired m_fast
  then
    fail "retired %d vs %d"
      (Machine.instructions_retired m_ref)
      (Machine.instructions_retired m_fast);
  if Machine.cycles_executed m_ref <> Machine.cycles_executed m_fast then
    fail "cycles %d vs %d"
      (Machine.cycles_executed m_ref)
      (Machine.cycles_executed m_fast);
  if Machine.wn_instructions m_ref <> Machine.wn_instructions m_fast then
    fail "wn retired differ";
  (match (Machine.memo m_ref, Machine.memo m_fast) with
  | Some a, Some b ->
      if Memo.hits a <> Memo.hits b || Memo.misses a <> Memo.misses b then
        fail "memo counters (%d,%d) vs (%d,%d)" (Memo.hits a) (Memo.misses a)
          (Memo.hits b) (Memo.misses b)
  | None, None -> ()
  | _ -> fail "memo presence differs");
  if
    Wn_mem.Memory.snapshot (Machine.mem m_ref)
    <> Wn_mem.Memory.snapshot (Machine.mem m_fast)
  then fail "memory images differ"

let lockstep_workload wname (cfg_name, mcfg) () =
  let w = Suite.find Workload.Small wname in
  let b = Wn_core.Runner.build w wcfg in
  let m_ref = Wn_core.Runner.machine ~machine_config:mcfg b in
  let m_fast = Wn_core.Runner.machine ~machine_config:mcfg b in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 42) in
  Wn_core.Runner.load_sample b m_ref inputs;
  Wn_core.Runner.load_sample b m_fast inputs;
  let name = Printf.sprintf "%s/%s" wname cfg_name in
  let steps = ref 0 in
  while (not (Machine.halted m_ref)) && !steps < max_lockstep_steps do
    incr steps;
    let r = Machine.step_reference m_ref in
    Machine.step_fast m_fast;
    check_step_effects name !steps r m_fast;
    if Machine.pc m_ref <> Machine.pc m_fast then
      Alcotest.failf "%s step %d: pc %d vs %d" name !steps (Machine.pc m_ref)
        (Machine.pc m_fast)
  done;
  check_machines_equal name m_ref m_fast;
  if !steps = 0 then Alcotest.fail "workload executed no instructions"

(* The [step] wrapper must report exactly what [step_reference] does. *)
let test_step_wrapper () =
  let w = Suite.find Workload.Small "Var" in
  let b = Wn_core.Runner.build w wcfg in
  let mcfg = { Machine.memo_entries = Some 16; Machine.zero_skip = true } in
  let m_ref = Wn_core.Runner.machine ~machine_config:mcfg b in
  let m_wrap = Wn_core.Runner.machine ~machine_config:mcfg b in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 7) in
  Wn_core.Runner.load_sample b m_ref inputs;
  Wn_core.Runner.load_sample b m_wrap inputs;
  let steps = ref 0 in
  while (not (Machine.halted m_ref)) && !steps < max_lockstep_steps do
    incr steps;
    let r = Machine.step_reference m_ref in
    let s = Machine.step m_wrap in
    if r <> s then Alcotest.failf "step %d: step_result records differ" !steps
  done;
  check_machines_equal "Var/wrapper" m_ref m_wrap

(* ---------------- executor-level: Fast vs Compat ---------------- *)

let policies =
  [
    ("always_on", Executor.Always_on);
    ("nvp", Executor.Nvp Executor.default_nvp);
    ("clank", Executor.Clank Executor.default_clank);
  ]

let run_with_engine engine b w inputs policy =
  let mcfg = { Machine.memo_entries = Some 16; Machine.zero_skip = true } in
  let m = Wn_core.Runner.machine ~machine_config:mcfg b in
  Wn_core.Runner.load_sample b m inputs;
  let trace =
    Wn_power.Trace.square ~on_ms:3 ~off_ms:30 ~power:2e-3 ~duration_s:4.0
  in
  let supply =
    Wn_power.Supply.create ~trace ~capacitor:(Wn_power.Capacitor.create ()) ()
  in
  let outcome = Executor.run ~policy ~engine ~machine:m ~supply () in
  ignore w;
  (outcome, Wn_mem.Memory.snapshot (Machine.mem m))

let executor_differential wname (pname, policy) () =
  let w = Suite.find Workload.Small wname in
  let b = Wn_core.Runner.build w wcfg in
  let inputs = w.Workload.fresh_inputs (Wn_util.Rng.create 11) in
  let o_fast, mem_fast = run_with_engine Executor.Fast b w inputs policy in
  let o_compat, mem_compat = run_with_engine Executor.Compat b w inputs policy in
  let name = Printf.sprintf "%s/%s" wname pname in
  let check_int field a b =
    if a <> b then Alcotest.failf "%s: %s %d vs %d" name field a b
  in
  check_int "wall_cycles" o_fast.Executor.wall_cycles o_compat.Executor.wall_cycles;
  check_int "active_cycles" o_fast.Executor.active_cycles
    o_compat.Executor.active_cycles;
  check_int "overhead_cycles" o_fast.Executor.overhead_cycles
    o_compat.Executor.overhead_cycles;
  check_int "reexecuted" o_fast.Executor.reexecuted_instructions
    o_compat.Executor.reexecuted_instructions;
  check_int "outages" o_fast.Executor.outage_count o_compat.Executor.outage_count;
  check_int "checkpoints" o_fast.Executor.checkpoint_count
    o_compat.Executor.checkpoint_count;
  check_int "retired" o_fast.Executor.retired o_compat.Executor.retired;
  if o_fast.Executor.completed <> o_compat.Executor.completed then
    Alcotest.failf "%s: completed differs" name;
  if o_fast.Executor.skimmed <> o_compat.Executor.skimmed then
    Alcotest.failf "%s: skimmed differs" name;
  if o_fast.Executor.first_skim_active <> o_compat.Executor.first_skim_active
  then Alcotest.failf "%s: first_skim_active differs" name;
  if mem_fast <> mem_compat then Alcotest.failf "%s: memory images differ" name

(* ---------------- zero allocation ---------------- *)

(* ALU / load / store / branch / multiply / SKM steady-state loop that
   cannot halt within the measured window. *)
let alloc_probe_program =
  Asm.assemble_exn
    [
      Asm.I (Instr.Mov_imm (Reg.r 0, 0));
      Asm.I (Instr.Mov_imm (Reg.r 1, 1));
      Asm.I (Instr.Mov_imm (Reg.r 2, 1_000_000));
      Asm.Label "loop";
      Asm.I
        (Instr.Ldr
           { width = Instr.Word; signed = false; rd = Reg.r 3; base = Reg.r 0; off = 0 });
      Asm.I (Instr.Alu (Instr.Add, Reg.r 3, Reg.r 3, Reg.r 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = Reg.r 3; base = Reg.r 0; off = 0 });
      Asm.I (Instr.Mul (Reg.r 4, Reg.r 3, Reg.r 1));
      Asm.I (Instr.Skm "done");
      Asm.I (Instr.Alu (Instr.Sub, Reg.r 2, Reg.r 2, Reg.r 1));
      Asm.I (Instr.Cmp_imm (Reg.r 2, 0));
      Asm.I (Instr.B (Cond.Ne, "loop"));
      Asm.Label "done";
      Asm.I Instr.Halt;
    ]

let test_step_fast_no_alloc () =
  let mem = Wn_mem.Memory.create ~size:256 in
  let config = { Machine.memo_entries = Some 16; Machine.zero_skip = true } in
  let m = Machine.create ~config ~program:alloc_probe_program ~mem () in
  (* Warm up: first executions of every closure, lazy runtime setup. *)
  for _ = 1 to 1_000 do
    Machine.step_fast m
  done;
  (* [Gc.minor_words] itself boxes its float result; measure that
     constant the same way the real measurement pays it, and subtract. *)
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let baseline = b -. a in
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Machine.step_fast m
  done;
  let w1 = Gc.minor_words () in
  let allocated = w1 -. w0 -. baseline in
  if allocated <> 0.0 then
    Alcotest.failf "step_fast allocated %.0f minor words over 10k instructions"
      allocated;
  if Machine.halted m then Alcotest.fail "probe program halted inside window"

let () =
  let lockstep_cases =
    List.concat_map
      (fun wname ->
        List.map
          (fun (cfg_name, mcfg) ->
            Alcotest.test_case
              (Printf.sprintf "%s %s" wname cfg_name)
              `Quick
              (lockstep_workload wname (cfg_name, mcfg)))
          machine_configs)
      Suite.names
  in
  let executor_cases =
    List.concat_map
      (fun wname ->
        List.map
          (fun p ->
            Alcotest.test_case
              (Printf.sprintf "%s %s" wname (fst p))
              `Quick
              (executor_differential wname p))
          policies)
      [ "Var"; "Home"; "MatAdd" ]
  in
  Alcotest.run "wn.fastpath"
    [
      ("machine lockstep", lockstep_cases);
      ( "step wrapper",
        [ Alcotest.test_case "record identical" `Quick test_step_wrapper ] );
      ("executor fast vs compat", executor_cases);
      ( "allocation",
        [ Alcotest.test_case "step_fast allocation-free" `Quick test_step_fast_no_alloc ] );
    ]
