(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation section, then runs a Bechamel microbenchmark suite
   over the simulation kernels behind each of them.

   Usage:
     dune exec bench/main.exe                    # everything, CI-sized
     dune exec bench/main.exe -- fig9 fig10      # selected experiments
     dune exec bench/main.exe -- --paper-setup   # 9 traces x 3 invocations
     dune exec bench/main.exe -- --paper-scale   # 128x128 conv, 64x64 matmul
     dune exec bench/main.exe -- --jobs 8        # domain-pool width (default: cores, capped)
     dune exec bench/main.exe -- --out figures   # also write PGM images
     dune exec bench/main.exe -- --no-micro      # skip the Bechamel pass
     dune exec bench/main.exe -- --micro-only    # only the Bechamel pass
     dune exec bench/main.exe -- --bench-json F  # where to persist estimates

   Figures go to stdout; per-experiment wall-time lines of the form
   [fig10: 12.34s wall, 8 jobs] go to stderr, so stdout is bit-identical
   across --jobs values and the timings stay measurable.  The Bechamel
   estimates are additionally serialized to BENCH_machine.json (or
   --bench-json PATH) so successive commits leave a comparable
   performance trajectory. *)

open Wn_workloads

let usage () =
  prerr_endline
    "usage: main.exe [--paper-scale] [--paper-setup] [--jobs N] [--out DIR] \
     [--no-micro] [--micro-only] [--bench-json PATH] [experiment ...]";
  prerr_endline
    ("experiments: " ^ String.concat " " (List.map fst Wn_core.Figures.all));
  exit 2

type args = {
  opts : Wn_core.Figures.options;
  chosen : string list;
  micro : bool;
  micro_only : bool;
  bench_json : string;
}

let parse_args () =
  let opts =
    ref
      {
        Wn_core.Figures.default_options with
        Wn_core.Figures.jobs = Wn_exec.Pool.default_jobs ();
      }
  in
  let chosen = ref [] in
  let micro = ref true in
  let micro_only = ref false in
  let bench_json = ref "BENCH_machine.json" in
  let rec go = function
    | [] -> ()
    | "--paper-scale" :: rest ->
        opts := { !opts with Wn_core.Figures.scale = Workload.Paper };
        go rest
    | "--paper-setup" :: rest ->
        opts :=
          { !opts with Wn_core.Figures.setup = Wn_core.Intermittent.paper_setup };
        go rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> opts := { !opts with Wn_core.Figures.jobs = n }
        | _ ->
            Printf.eprintf "--jobs needs a positive integer, got %S\n" n;
            usage ());
        go rest
    | "--out" :: dir :: rest ->
        opts := { !opts with Wn_core.Figures.out_dir = Some dir };
        go rest
    | "--no-micro" :: rest ->
        micro := false;
        go rest
    | "--micro-only" :: rest ->
        micro_only := true;
        go rest
    | "--bench-json" :: path :: rest ->
        bench_json := path;
        go rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "unknown flag %s\n" arg;
        usage ()
    | arg :: rest ->
        chosen := arg :: !chosen;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    opts = !opts;
    chosen = List.rev !chosen;
    micro = !micro;
    micro_only = !micro_only;
    bench_json = !bench_json;
  }

(* ---------------- Bechamel microbenchmarks ---------------- *)

(* One Test.make per table/figure: the simulation kernel that dominates
   that experiment's cost, so regressions in the substrate show up next
   to the experiment they would slow down. *)
let micro_tests scale =
  let open Bechamel in
  (* table1 / fig9: raw simulator stepping on the Var kernel. *)
  let var = Suite.find scale "Var" in
  let cfg8 = { Workload.bits = 8; provisioned = true } in
  let build = Wn_core.Runner.build var cfg8 in
  let rng = Wn_util.Rng.create 1 in
  let inputs = var.Workload.fresh_inputs rng in
  let machine = Wn_core.Runner.machine build in
  let step_machine () =
    Wn_core.Runner.load_sample build machine inputs;
    for _ = 1 to 1000 do
      Wn_machine.Machine.step_fast machine
    done
  in
  (* Same workload through the block engine: fused runs retire several
     instructions per dispatch, so the loop counts retirement instead of
     dispatches (it may overshoot by at most one block's tail). *)
  let step_machine_block () =
    Wn_core.Runner.load_sample build machine inputs;
    let stop = Wn_machine.Machine.instructions_retired machine + 1000 in
    while Wn_machine.Machine.instructions_retired machine < stop do
      Wn_machine.Machine.step_block machine
    done
  in
  (* fig10/fig11: a full intermittent task on a bursty supply. *)
  let trace =
    Wn_power.Trace.square ~on_ms:3 ~off_ms:30 ~power:2e-3 ~duration_s:4.0
  in
  let intermittent_task engine () =
    let supply =
      Wn_power.Supply.create ~trace ~capacitor:(Wn_power.Capacitor.create ()) ()
    in
    Wn_core.Runner.load_sample build machine inputs;
    ignore
      (Wn_runtime.Executor.run
         ~policy:(Wn_runtime.Executor.Clank Wn_runtime.Executor.default_clank)
         ~engine ~machine ~supply ())
  in
  (* fig10: the Clank runtime with its shadow-map read/write tracking,
     isolated from outage physics by an always-on supply — measures the
     per-instruction tracking overhead alone. *)
  let clank_shadowmap engine () =
    Wn_core.Runner.load_sample build machine inputs;
    ignore
      (Wn_runtime.Executor.run
         ~policy:(Wn_runtime.Executor.Clank Wn_runtime.Executor.default_clank)
         ~engine ~machine
         ~supply:(Wn_power.Supply.always_on ())
         ())
  in
  (* fig13: the multiply front end with and without memoization. *)
  let memo = Wn_machine.Memo.create ~entries:16 () in
  let memo_lookup () =
    for a = 0 to 99 do
      match Wn_machine.Memo.lookup memo ~a ~b:17 with
      | Some _ -> ()
      | None -> Wn_machine.Memo.insert memo ~a ~b:17 ~result:(a * 17)
    done
  in
  (* table1 (code size): compile the Var kernel end to end. *)
  let compile_kernel () =
    ignore
      (Wn_compiler.Compile.compile_source ~options:Wn_compiler.Compile.anytime
         (var.Workload.source cfg8))
  in
  (* fig14: subword-major encode of a MatAdd-sized input. *)
  let layout =
    Wn_compiler.Layout.subword_major ~elem_bits:32 ~signed:false ~bits:8
      ~lane_bits:16 ~count:1024 ()
  in
  let data = Array.init 1024 (fun i -> i * 1_048_573) in
  let layout_encode () = ignore (Wn_compiler.Layout.encode layout data) in
  (* isa codec behind every build. *)
  let program = build.Wn_core.Runner.compiled.Wn_compiler.Compile.program in
  let codec () =
    match
      Wn_isa.Encoding.decode_program (Wn_isa.Encoding.encode_program program)
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let fast = Wn_runtime.Executor.Fast in
  let block = Wn_runtime.Executor.Block in
  [
    Test.make ~name:"table1:compile_var_kernel" (Staged.stage compile_kernel);
    Test.make ~name:"fig9:simulate_1k_instructions[engine=fast]"
      (Staged.stage step_machine);
    Test.make ~name:"fig9:simulate_1k_instructions[engine=block]"
      (Staged.stage step_machine_block);
    Test.make ~name:"fig10:intermittent_clank_task[engine=fast]"
      (Staged.stage (intermittent_task fast));
    Test.make ~name:"fig10:intermittent_clank_task[engine=block]"
      (Staged.stage (intermittent_task block));
    Test.make ~name:"fig10:executor_clank_shadowmap[engine=fast]"
      (Staged.stage (clank_shadowmap fast));
    Test.make ~name:"fig10:executor_clank_shadowmap[engine=block]"
      (Staged.stage (clank_shadowmap block));
    Test.make ~name:"fig13:memo_front_end" (Staged.stage memo_lookup);
    Test.make ~name:"fig14:subword_major_encode" (Staged.stage layout_encode);
    Test.make ~name:"isa:codec_roundtrip" (Staged.stage codec);
  ]

(* Persist estimates as name -> ns/run, so each commit leaves a
   machine-readable point on the repo's performance trajectory (see
   EXPERIMENTS.md).  Hand-rolled JSON: names contain no characters
   needing escapes beyond what %S provides. *)
let write_bench_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"wn-bench/1\",\n";
  Printf.fprintf oc "  \"unit\": \"ns/run\",\n";
  Printf.fprintf oc "  \"results\": {";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "%s\n    %S: %.1f" (if i = 0 then "" else ",") name ns)
    rows;
  Printf.fprintf oc "\n  }\n}\n";
  close_out oc

let run_micro scale ~json_path =
  let open Bechamel in
  let open Toolkit in
  print_newline ();
  print_endline "=== Bechamel microbenchmarks (ns per run) ===";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let tests = Test.make_grouped ~name:"wn" (micro_tests scale) in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let estimates =
    List.filter_map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Some (name, t)
        | _ -> None)
      rows
    |> List.sort compare
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Printf.printf "%-40s %12.0f ns/run\n" name t
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort compare rows);
  write_bench_json json_path estimates;
  Printf.eprintf "[bechamel estimates written to %s]\n%!" json_path

let () =
  let { opts; chosen; micro; micro_only; bench_json } = parse_args () in
  let ppf = Format.std_formatter in
  let ids = if chosen = [] then List.map fst Wn_core.Figures.all else chosen in
  if not micro_only then begin
    let wall0 = Unix.gettimeofday () in
    let cpu0 = Sys.time () in
    List.iter
      (fun id ->
        let t0 = Unix.gettimeofday () in
        match Wn_core.Figures.run ppf opts id with
        | Ok () ->
            Format.pp_print_flush ppf ();
            (* Timing goes to stderr: stdout stays bit-identical across
               --jobs values, which is what the determinism check diffs. *)
            Printf.eprintf "[%s: %.2fs wall, %d jobs]\n%!" id
              (Unix.gettimeofday () -. t0)
              opts.Wn_core.Figures.jobs
        | Error e ->
            prerr_endline e;
            exit 2)
      ids;
    Printf.eprintf "\n[experiments done in %.1fs wall / %.1fs cpu, %d jobs]\n%!"
      (Unix.gettimeofday () -. wall0)
      (Sys.time () -. cpu0)
      opts.Wn_core.Figures.jobs
  end;
  if micro && (micro_only || chosen = []) then
    run_micro opts.Wn_core.Figures.scale ~json_path:bench_json
