(* Static fusion statistics for the block-compiled engine: how much of
   each benchmark's code the block planner covers, and the distribution
   of fused-run lengths (the block-length histogram quoted in
   EXPERIMENTS.md).

   Usage:
     dune exec bench/block_stats.exe             # suite, 8-bit, both builds
     dune exec bench/block_stats.exe -- 4        # other subword size

   Output is deterministic: it depends only on the compiled programs.
   [memoizable:false] matches the default machine configuration (no
   memo table, no zero skipping) the figure drivers simulate with; with
   memoization enabled multiplies drop out of the fusible set, so
   coverage there is a lower bound of what these tables show. *)

open Wn_workloads
module Fuse = Wn_analysis.Fuse

let pp_build name (b : Wn_core.Runner.build) =
  let program = b.Wn_core.Runner.compiled.Wn_compiler.Compile.program in
  let s = Fuse.stats ~memoizable:false program in
  let pct =
    if s.Fuse.instructions = 0 then 0.0
    else
      100.0 *. float_of_int s.Fuse.fused_instructions
      /. float_of_int s.Fuse.instructions
  in
  Printf.printf "  %-8s %4d instructions, %3d runs, %4d fused (%.1f%%)\n" name
    s.Fuse.instructions s.Fuse.runs s.Fuse.fused_instructions pct;
  if s.Fuse.histogram <> [] then begin
    Printf.printf "    run length histogram:";
    List.iter
      (fun (len, count) -> Printf.printf " %d:%d" len count)
      s.Fuse.histogram;
    print_newline ()
  end

let () =
  let bits =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8
  in
  let cfg = { Workload.bits; provisioned = true } in
  Printf.printf "block fusion statistics (bits=%d, memoizable=false)\n" bits;
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "%s:\n" w.Workload.name;
      pp_build "anytime" (Wn_core.Runner.build w cfg);
      pp_build "precise" (Wn_core.Runner.build ~precise:true w cfg))
    (Suite.all Workload.Small @ Suite.extensions Workload.Small)
