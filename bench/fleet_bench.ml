(* Wall-time benchmark for the fleet simulation service (wn.fleet).

   Simulates a >= 10k-unit fleet through the streaming aggregator,
   checks on a smaller fleet that the report stays byte-identical
   across --jobs (the service's core guarantee), and persists the
   wall time and throughput to BENCH_fleet.json in the wn-bench/1
   shape, so successive commits leave a comparable trajectory.

   Usage:
     dune exec bench/fleet_bench.exe                   # 10k-unit Var fleet
     dune exec bench/fleet_bench.exe -- --devices 2000
     dune exec bench/fleet_bench.exe -- --jobs 4
     dune exec bench/fleet_bench.exe -- --bench-json F *)

let usage () =
  prerr_endline
    "usage: fleet_bench.exe [--devices N] [--jobs N] [--bench-json PATH]";
  exit 2

let parse_args () =
  let devices = ref 10_000 in
  let jobs = ref (Wn_exec.Pool.default_jobs ()) in
  let bench_json = ref "BENCH_fleet.json" in
  let int_arg flag n ~min =
    match int_of_string_opt n with
    | Some v when v >= min -> v
    | _ ->
        Printf.eprintf "%s needs an integer >= %d, got %S\n" flag min n;
        usage ()
  in
  let rec go = function
    | [] -> ()
    | "--devices" :: n :: rest ->
        devices := int_arg "--devices" n ~min:1;
        go rest
    | "--jobs" :: n :: rest ->
        jobs := int_arg "--jobs" n ~min:1;
        go rest
    | "--bench-json" :: path :: rest ->
        bench_json := path;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!devices, !jobs, !bench_json)

let write_bench_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"wn-bench/1\",\n";
  Printf.fprintf oc "  \"unit\": \"mixed\",\n";
  Printf.fprintf oc "  \"results\": {";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "%s\n    %S: %.3f" (if i = 0 then "" else ",") name v)
    rows;
  Printf.fprintf oc "\n  }\n}\n";
  close_out oc

let render r =
  Format.asprintf "%a" Wn_fleet.Fleet.pp r ^ Wn_fleet.Fleet.to_json r

let () =
  let devices, jobs, bench_json = parse_args () in
  (* Jobs-identity first, on a small fleet: the batch partition — not
     the pool width — defines aggregation order, so every jobs value
     must render the identical report.  Any difference is a
     correctness bug; fail loudly rather than record a time. *)
  let small = { Wn_fleet.Fleet.default with Wn_fleet.Fleet.devices = 100 } in
  let reference = render (Wn_fleet.Fleet.run ~jobs:1 small) in
  List.iter
    (fun j ->
      if render (Wn_fleet.Fleet.run ~jobs:j small) <> reference then begin
        Printf.eprintf "fleet report at jobs=%d diverged from jobs=1!\n" j;
        exit 1
      end)
    [ 2; 8 ];
  Printf.eprintf "[fleet: jobs 1/2/8 byte-identical on %d units]\n%!"
    small.Wn_fleet.Fleet.devices;
  (* The headline run: a fleet large enough that per-sample storage
     would dominate, aggregated in bounded memory. *)
  let d = { Wn_fleet.Fleet.default with Wn_fleet.Fleet.devices } in
  let t0 = Unix.gettimeofday () in
  let report = Wn_fleet.Fleet.run ~jobs d in
  let dt = Unix.gettimeofday () -. t0 in
  let throughput = float_of_int report.Wn_fleet.Fleet.units /. dt in
  Printf.eprintf "[fleet: %d units in %.2fs, %.0f units/s, %d jobs]\n%!"
    report.Wn_fleet.Fleet.units dt throughput jobs;
  if report.Wn_fleet.Fleet.tasks < devices then begin
    Printf.eprintf "fleet dropped tasks: %d < %d\n" report.Wn_fleet.Fleet.tasks
      devices;
    exit 1
  end;
  write_bench_json bench_json
    [
      (Printf.sprintf "fleet:%d_units_wall_s" devices, dt);
      (Printf.sprintf "fleet:%d_units_per_s" devices, throughput);
      ( Printf.sprintf "fleet:%d_completed_pct" devices,
        100.0
        *. float_of_int report.Wn_fleet.Fleet.completed
        /. float_of_int report.Wn_fleet.Fleet.tasks );
    ];
  Printf.eprintf "[fleet bench written to %s]\n%!" bench_json
