(* Wall-time benchmark for the keyframe snapshot engine behind
   fault-injection sweeps (wn.core Inject / wn.faults).

   Runs the same outage sweep several times — every point replayed from
   instruction 0, then every point resumed from the nearest keyframe at
   each requested interval, plus one run with isolated full-copy frames
   for the delta-vs-full comparison — verifies all reports are
   byte-identical, and persists the wall times (plus the derived
   speedups and the keyframe store's resident size) to
   BENCH_inject.json in the same wn-bench/1 shape as
   BENCH_machine.json, so successive commits leave a comparable
   trajectory.

   Usage:
     dune exec bench/inject_bench.exe                    # exhaustive MatAdd
     dune exec bench/inject_bench.exe -- --points 500    # sampled sweep
     dune exec bench/inject_bench.exe -- --jobs 8
     dune exec bench/inject_bench.exe -- --keyframe-interval 1024
     dune exec bench/inject_bench.exe -- --k-sweep auto,512,2048
     dune exec bench/inject_bench.exe -- --bench-json F  # where to persist *)

open Wn_workloads

let usage () =
  prerr_endline
    "usage: inject_bench.exe [--bench NAME] [--points N] [--jobs N] \
     [--keyframe-interval K|auto] [--k-sweep K1,K2,...] [--bench-json PATH]";
  exit 2

let auto = Wn_core.Inject.auto_keyframe_interval

let parse_args () =
  let bench = ref "MatAdd" in
  let points = ref 0 (* 0 = exhaustive *) in
  let jobs = ref (Wn_exec.Pool.default_jobs ()) in
  let ks = ref [ auto ] in
  let bench_json = ref "BENCH_inject.json" in
  let int_arg flag n ~min =
    match int_of_string_opt n with
    | Some v when v >= min -> v
    | _ ->
        Printf.eprintf "%s needs an integer >= %d, got %S\n" flag min n;
        usage ()
  in
  let k_arg flag n = if n = "auto" then auto else int_arg flag n ~min:1 in
  let rec go = function
    | [] -> ()
    | "--bench" :: name :: rest ->
        bench := name;
        go rest
    | "--points" :: n :: rest ->
        points := int_arg "--points" n ~min:1;
        go rest
    | "--jobs" :: n :: rest ->
        jobs := int_arg "--jobs" n ~min:1;
        go rest
    | "--keyframe-interval" :: n :: rest ->
        ks := [ k_arg "--keyframe-interval" n ];
        go rest
    | "--k-sweep" :: list :: rest ->
        ks := List.map (k_arg "--k-sweep") (String.split_on_char ',' list);
        go rest
    | "--bench-json" :: path :: rest ->
        bench_json := path;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!bench, !points, !jobs, !ks, !bench_json)

(* Same JSON shape as bench/main.ml: name -> float, no escapes needed. *)
let write_bench_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"wn-bench/1\",\n";
  Printf.fprintf oc "  \"unit\": \"s/sweep\",\n";
  Printf.fprintf oc "  \"results\": {";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "%s\n    %S: %.3f" (if i = 0 then "" else ",") name v)
    rows;
  Printf.fprintf oc "\n  }\n}\n";
  close_out oc

(* The keyframe store's resident size, measured on a survey identical
   to the one Inject.sweep takes (same build, inputs and policy).
   [Obj.reachable_words] counts structurally shared pages once, so
   delta stores report their true footprint. *)
let store_mib ~config ~interval ~full w =
  let cfg = { Workload.bits = config.Wn_core.Inject.bits; provisioned = true } in
  let b = Wn_core.Runner.build ~precise:(not config.Wn_core.Inject.skim) w cfg in
  let inputs =
    w.Workload.fresh_inputs (Wn_util.Rng.create config.Wn_core.Inject.input_seed)
  in
  let scenario =
    {
      Wn_faults.Faults.fresh =
        (fun () ->
          let m = Wn_core.Runner.machine b in
          Wn_core.Runner.load_sample b m inputs;
          m);
      policy = Wn_runtime.Executor.Clank Wn_runtime.Executor.default_clank;
    }
  in
  let s =
    Wn_faults.Faults.survey ~keyframe_interval:interval ~full_frames:full
      scenario
  in
  match s.Wn_faults.Faults.sv_keyframes with
  | None -> 0.0
  | Some kfs ->
      float_of_int (Obj.reachable_words (Obj.repr kfs) * (Sys.word_size / 8))
      /. (1024.0 *. 1024.0)

let () =
  let bench, points, jobs, ks, bench_json = parse_args () in
  let w =
    match Suite.find_opt Workload.Small bench with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown benchmark %S\n" bench;
        usage ()
  in
  let mode =
    if points = 0 then Wn_core.Inject.Exhaustive else Wn_core.Inject.Sampled points
  in
  let tag = if points = 0 then "exhaustive" else Printf.sprintf "sampled%d" points
  in
  let render r = Format.asprintf "%a" Wn_core.Inject.pp r in
  let timed config =
    let t0 = Unix.gettimeofday () in
    let report = Wn_core.Inject.sweep ~jobs ~mode ~config w in
    (Unix.gettimeofday () -. t0, report)
  in
  let base = { Wn_core.Inject.default_config with keyframe_interval = 0 } in
  let t_off, r_off = timed base in
  Printf.eprintf "[%s %s: %.2fs from scratch, %d points, %d jobs]\n%!" bench tag
    t_off r_off.Wn_core.Inject.points jobs;
  if r_off.Wn_core.Inject.violations <> [] then begin
    prerr_endline (render r_off);
    exit 1
  end;
  (* The interval the auto sentinel resolves to for this workload; row
     names keep the "kauto" tag so successive commits stay comparable
     even as the resolved value drifts with the compiler. *)
  let resolve k =
    if k = auto then
      Wn_faults.Faults.auto_keyframe_interval
        ~boundaries:(max 1 (r_off.Wn_core.Inject.retired - 1))
    else k
  in
  let kname k = if k = auto then "kauto" else Printf.sprintf "k%d" k in
  let rows = ref [ (Printf.sprintf "inject:%s_%s_scratch" bench tag, t_off) ] in
  let row fmt v =
    rows := (fmt, v) :: !rows
  in
  (* Keyframes (any interval, delta or full) are a pure replay-cost
     knob: any report difference is a correctness bug, so fail loudly
     rather than record a time. *)
  let check_identical what r_on =
    if render r_on <> render r_off then begin
      Printf.eprintf "%s sweep diverged from scratch!\n" what;
      exit 1
    end
  in
  List.iteri
    (fun i k ->
      let name = kname k in
      let t_on, r_on = timed { base with Wn_core.Inject.keyframe_interval = k } in
      check_identical (Printf.sprintf "keyframed (%s)" name) r_on;
      let mib = store_mib ~config:base ~interval:(resolve k) ~full:false w in
      Printf.eprintf
        "[%s %s: %.2fs with %s=%d delta frames (%.1fx, store %.2f MiB)]\n%!"
        bench tag t_on name (resolve k) (t_off /. t_on) mib;
      row (Printf.sprintf "inject:%s_%s_%s" bench tag name) t_on;
      row (Printf.sprintf "inject:%s_%s_%s_speedup_x" bench tag name)
        (t_off /. t_on);
      row (Printf.sprintf "inject:%s_%s_%s_store_mib" bench tag name) mib;
      (* Delta-vs-full comparison at the first (default: auto) interval
         only — it is the expensive extra sweep, and one pair feeds the
         CI ratio gate. *)
      if i = 0 then begin
        let t_full, r_full =
          timed
            {
              base with
              Wn_core.Inject.keyframe_interval = k;
              Wn_core.Inject.delta_frames = false;
            }
        in
        check_identical (Printf.sprintf "full-frame (%s)" name) r_full;
        let full_mib = store_mib ~config:base ~interval:(resolve k) ~full:true w in
        Printf.eprintf
          "[%s %s: %.2fs with %s=%d full frames (store %.2f MiB, %.1fx the \
           delta store)]\n%!"
          bench tag t_full name (resolve k) full_mib
          (if mib > 0.0 then full_mib /. mib else 0.0);
        row (Printf.sprintf "inject:%s_%s_%s_full" bench tag name) t_full;
        row (Printf.sprintf "inject:%s_%s_%s_full_store_mib" bench tag name)
          full_mib;
        if mib > 0.0 then
          row (Printf.sprintf "inject:%s_%s_%s_store_ratio_x" bench tag name)
            (full_mib /. mib)
      end)
    ks;
  write_bench_json bench_json (List.rev !rows);
  Printf.eprintf "[inject bench written to %s]\n%!" bench_json
