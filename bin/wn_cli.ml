(* wn — command-line front end for the What's Next reproduction.

   Subcommands:
     wn list                      benchmarks and experiments
     wn run BENCH ...             execute one benchmark task
     wn curve BENCH ...           runtime-quality curve as CSV
     wn figure ID ...             regenerate a table/figure of the paper
     wn inject BENCH ...          outage-point fault-injection sweep
     wn fleet BENCH ...           fleet-scale deployment simulation
     wn compile [BENCH] ...       run the pass pipeline, lint after every pass
     wn insn [BENCH ...]          dynamic instruction counts (the CI gate)
     wn disasm BENCH ...          show the compiled WN-32 program
     wn lint BENCH ...            static verification of the compiled program
     wn verify BENCH ...          static forward-progress (WCEC) verification
     wn source BENCH ...          show the generated WNC source *)

open Cmdliner
open Wn_workloads

(* ---------------- shared arguments ---------------- *)

let scale_arg =
  let doc = "Use the paper's full workload dimensions (slower)." in
  Term.app
    (Term.const (fun paper -> if paper then Workload.Paper else Workload.Small))
    Arg.(value & flag & info [ "paper-scale" ] ~doc)

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Input generator seed.")

let bits_arg =
  Arg.(value & opt int 8 & info [ "bits" ] ~docv:"BITS" ~doc:"Subword size (1-16).")

let jobs_arg =
  let doc =
    "Domain-pool width for the experiment fan-out (default: the \
     machine's recommended domain count, capped).  Output is \
     bit-identical for every value."
  in
  Arg.(
    value
    & opt int (Wn_exec.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit machine-readable JSON instead of the human report.")

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCH"
        ~doc:"Benchmark name (Conv2d, MatMul, MatAdd, Home, Var, NetMotion).")

(* Compiler failures (bad --bits for a benchmark's pragmas, strict
   verification, ...) surface as clean cmdliner errors, not tracebacks. *)
let catch_compile_error f =
  match f () with
  | r -> r
  | exception Wn_compiler.Compile.Error e -> Error (`Msg e)

(* Range checks for numeric options cmdliner's [int] converter accepts
   syntactically: a nonsensical value exits with a one-line error, not a
   traceback (or worse, a divide-by-zero deep in a sweep). *)
let require_positive name v =
  if v >= 1 then Ok v
  else Error (`Msg (Printf.sprintf "--%s must be >= 1 (got %d)" name v))

let require_non_negative name v =
  if v >= 0 then Ok v
  else Error (`Msg (Printf.sprintf "--%s must be >= 0 (got %d)" name v))

let ( let* ) = Result.bind

let find_bench scale name =
  match Suite.find_opt scale name with
  | Some w -> Ok w
  | None ->
      Error (`Msg (Printf.sprintf "unknown benchmark %S (try `wn list')" name))

(* Hand-parsed like --trace so an unknown engine gives the same
   one-line diagnostic shape, not a multi-line usage dump. *)
let engine_arg =
  Arg.(
    value & opt string "block"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Executor stepping engine: $(b,block) (fused basic-block \
           superinstructions with energy-gated entry, the default), \
           $(b,fast) (per-instruction fast path) or $(b,compat) (the \
           original record interface, kept as a cross-check).  All \
           engines produce byte-identical reports; the choice only \
           affects simulation speed.")

let find_engine id =
  match Wn_runtime.Executor.engine_of_string id with
  | Some e -> Ok e
  | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown engine %S (know: fast, block, compat)" id))

(* ---------------- wn list ---------------- *)

let list_cmd =
  let run () =
    print_endline "Benchmarks (Table I):";
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "  %-10s %-22s %s\n" w.Workload.name w.Workload.area
          w.Workload.description)
      (Suite.all Workload.Small);
    print_endline "Extensions (beyond Table I):";
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "  %-10s %-22s %s\n" w.Workload.name w.Workload.area
          w.Workload.description)
      (Suite.extensions Workload.Small);
    print_endline "\nExperiments (tables/figures of the paper):";
    Printf.printf "  %s\n" (String.concat " " (List.map fst Wn_core.Figures.all))
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and experiments")
    Term.(const run $ const ())

(* ---------------- wn run ---------------- *)

let system_arg =
  let sys_conv =
    Arg.enum [ ("none", `None); ("clank", `Clank); ("nvp", `Nvp) ]
  in
  Arg.(
    value & opt sys_conv `None
    & info [ "system" ] ~docv:"SYS"
        ~doc:
          "Intermittency model: $(b,none) (continuous power), $(b,clank) \
           (checkpointing volatile processor) or $(b,nvp) (non-volatile \
           processor).")

let precise_arg =
  Arg.(value & flag & info [ "precise" ] ~doc:"Build the precise baseline (no WN).")

(* Parsed by hand rather than [Arg.enum] so an unknown id gives the
   same one-line diagnostic shape as an unknown benchmark, not a
   multi-line usage dump. *)
let trace_arg =
  Arg.(
    value & opt string "rf"
    & info [ "trace" ] ~docv:"TRACE"
        ~doc:
          "Harvesting trace for --system clank/nvp: $(b,rf) (bursty RF), \
           $(b,square) (2 ms on / 8 ms off) or $(b,constant).")

let find_trace = function
  | "rf" -> Ok `Rf
  | "square" -> Ok `Square
  | "constant" -> Ok `Constant
  | id ->
      Error
        (`Msg
           (Printf.sprintf "unknown trace %S (know: rf, square, constant)" id))

let run_bench bench_name scale bits precise system trace_name seed =
  let* w = find_bench scale bench_name in
  let* trace_id = find_trace trace_name in
  catch_compile_error @@ fun () ->
      let cfg = { Workload.bits; provisioned = true } in
      let b = Wn_core.Runner.build ~precise w cfg in
      let rng = Wn_util.Rng.create seed in
      let inputs = w.Workload.fresh_inputs rng in
      let machine = Wn_core.Runner.machine b in
      Wn_core.Runner.load_sample b machine inputs;
      let trace () =
        match trace_id with
        | `Rf -> Wn_power.Trace.rf_burst ~seed:(seed + 1) ~duration_s:60.0 ()
        | `Square ->
            Wn_power.Trace.square ~on_ms:2 ~off_ms:8 ~power:2e-3 ~duration_s:60.0
        | `Constant -> Wn_power.Trace.constant ~power:2e-3 ~duration_s:60.0
      in
      let harvesting () =
        Wn_power.Supply.create ~trace:(trace ())
          ~capacitor:(Wn_power.Capacitor.create ()) ()
      in
      let policy, supply =
        match system with
        | `None -> (Wn_runtime.Executor.Always_on, Wn_power.Supply.always_on ())
        | `Clank ->
            (Wn_runtime.Executor.Clank Wn_runtime.Executor.default_clank,
             harvesting ())
        | `Nvp ->
            (Wn_runtime.Executor.Nvp Wn_runtime.Executor.default_nvp,
             harvesting ())
      in
      let o = Wn_runtime.Executor.run ~policy ~machine ~supply () in
      let out = Wn_core.Runner.output b machine in
      let golden = w.Workload.golden inputs in
      Printf.printf "%s (%s, %d-bit)\n" w.Workload.name
        (if precise then "precise" else "anytime")
        bits;
      Printf.printf "  completed        %b%s\n" o.Wn_runtime.Executor.completed
        (if o.Wn_runtime.Executor.skimmed then " (via skim point)" else "");
      Printf.printf "  active cycles    %d (%.2f ms at 24 MHz)\n"
        o.Wn_runtime.Executor.active_cycles
        (float_of_int o.Wn_runtime.Executor.active_cycles /. 24e3);
      Printf.printf "  wall cycles      %d\n" o.Wn_runtime.Executor.wall_cycles;
      Printf.printf "  outages          %d\n" o.Wn_runtime.Executor.outage_count;
      Printf.printf "  checkpoints      %d (re-executed %d instructions)\n"
        o.Wn_runtime.Executor.checkpoint_count
        o.Wn_runtime.Executor.reexecuted_instructions;
      Printf.printf "  retired          %d instructions\n"
        o.Wn_runtime.Executor.retired;
      Printf.printf "  output NRMSE     %.4f%% vs the golden model\n"
        (Wn_core.Runner.nrmse_pct ~reference:golden out);
      Ok ()

let run_cmd =
  let term =
    Term.(
      term_result
        (const run_bench $ bench_arg $ scale_arg $ bits_arg $ precise_arg
       $ system_arg $ trace_arg $ seed_arg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute one benchmark task and report its outcome")
    term

(* ---------------- wn curve ---------------- *)

let curve_cmd =
  let benches_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"BENCH"
          ~doc:
            "Benchmark name(s) (Conv2d, MatMul, MatAdd, Home, Var, \
             NetMotion); several run in parallel under $(b,--jobs).")
  in
  let points_arg =
    Arg.(value & opt int 48 & info [ "points" ] ~doc:"Snapshot density.")
  in
  let vector_arg =
    Arg.(value & flag & info [ "vector-loads" ] ~doc:"Vectorize SWP loads (fig 12).")
  in
  let unprov_arg =
    Arg.(value & flag & info [ "unprovisioned" ] ~doc:"Unprovisioned SWV (fig 14).")
  in
  let run benches scale bits seed points vector_loads unprov jobs =
    let rec find_all = function
      | [] -> Ok []
      | b :: rest -> (
          match find_bench scale b with
          | Error e -> Error e
          | Ok w -> Result.map (fun ws -> w :: ws) (find_all rest))
    in
    let* points = require_positive "points" points in
    let* jobs = require_positive "jobs" jobs in
    match find_all benches with
    | Error e -> Error e
    | Ok ws ->
        catch_compile_error @@ fun () ->
        let curves =
          Wn_core.Curves.suite ~jobs ~points ~vector_loads
            ~provisioned:(not unprov) ~seed ~bits_list:[ bits ] ws
        in
        List.iter (fun c -> Format.printf "%a@?" Wn_core.Curves.pp c) curves;
        Ok ()
  in
  Cmd.v
    (Cmd.info "curve"
       ~doc:
         "Emit runtime-quality trade-off curves as CSV (one per \
          benchmark, computed on a domain pool)")
    Term.(
      term_result
        (const run $ benches_arg $ scale_arg $ bits_arg $ seed_arg $ points_arg
       $ vector_arg $ unprov_arg $ jobs_arg))

(* ---------------- wn figure ---------------- *)

let figure_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id, e.g. fig9, table1, area_power.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Write figure images (PGM) to $(docv).")
  in
  let paper_setup_arg =
    Arg.(
      value & flag
      & info [ "paper-setup" ]
          ~doc:"Use the paper's 9 traces x 3 invocations for figures 10/11.")
  in
  let run id scale seed out paper_setup engine_name jobs =
    let* jobs = require_positive "jobs" jobs in
    let* _ = require_non_negative "seed" seed in
    let* engine = find_engine engine_name in
    let setup =
      if paper_setup then Wn_core.Intermittent.paper_setup
      else Wn_core.Intermittent.default_setup
    in
    let opts =
      {
        Wn_core.Figures.scale;
        seed;
        setup = { setup with Wn_core.Intermittent.engine };
        out_dir = out;
        jobs;
      }
    in
    match Wn_core.Figures.run Format.std_formatter opts id with
    | Ok () ->
        Format.pp_print_flush Format.std_formatter ();
        Ok ()
    | Error e -> Error (`Msg e)
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate a table or figure of the paper")
    Term.(
      term_result
        (const run $ id_arg $ scale_arg $ seed_arg $ out_arg $ paper_setup_arg
       $ engine_arg $ jobs_arg))

(* ---------------- wn inject ---------------- *)

let inject_cmd =
  let points_arg =
    Arg.(
      value & opt int 500
      & info [ "points" ] ~docv:"N"
          ~doc:"Sampled outage points per configuration (>= 1).")
  in
  let inject_seed_arg =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~docv:"SEED" ~doc:"Boundary-sampling seed (>= 0).")
  in
  let exhaustive_arg =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:"Inject at every instruction boundary (ignores --points).")
  in
  let inj_system_arg =
    let sys_conv =
      Arg.enum [ ("clank", `Clank); ("nvp", `Nvp); ("both", `Both) ]
    in
    Arg.(
      value & opt sys_conv `Both
      & info [ "system" ] ~docv:"SYS"
          ~doc:"Intermittency model to sweep: $(b,clank), $(b,nvp) or $(b,both).")
  in
  let inj_skim_arg =
    let skim_conv = Arg.enum [ ("on", `On); ("off", `Off); ("both", `Both) ] in
    Arg.(
      value & opt skim_conv `Both
      & info [ "skim" ] ~docv:"MODE"
          ~doc:
            "Build under test: $(b,on) (anytime build with skim points), \
             $(b,off) (precise build) or $(b,both).")
  in
  let differential_arg =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Also run every point under the Compat engine and require \
             bit-identical restore state and outcome.")
  in
  let keyframe_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "keyframe-interval" ] ~docv:"K"
          ~doc:
            "Snapshot the continuous run every $(docv) retired \
             instructions and resume injected points from the nearest \
             snapshot instead of replaying the whole prefix.  0 \
             disables keyframes; without the flag the interval is \
             derived from the surveyed boundary count.  Reports are \
             byte-identical for every value.")
  in
  let full_keyframes_arg =
    Arg.(
      value & flag
      & info [ "full-keyframes" ]
          ~doc:
            "Capture keyframes as isolated full-memory copies instead \
             of delta snapshots sharing unwritten pages.  Observably \
             identical (reports are byte-identical); for store-size \
             and speed comparison.")
  in
  let run bench scale bits points seed exhaustive system skim differential
      keyframe_interval full_keyframes engine_name jobs =
    let* jobs = require_positive "jobs" jobs in
    let* points = require_positive "points" points in
    let* seed = require_non_negative "seed" seed in
    let* keyframe_interval =
      match keyframe_interval with
      | None -> Ok Wn_core.Inject.auto_keyframe_interval
      | Some k -> require_non_negative "keyframe-interval" k
    in
    let* engine = find_engine engine_name in
    match find_bench scale bench with
    | Error e -> Error e
    | Ok w ->
        catch_compile_error @@ fun () ->
        let systems =
          match system with
          | `Clank -> [ Wn_core.Intermittent.Clank ]
          | `Nvp -> [ Wn_core.Intermittent.Nvp ]
          | `Both -> [ Wn_core.Intermittent.Clank; Wn_core.Intermittent.Nvp ]
        in
        let skims =
          match skim with
          | `On -> [ true ]
          | `Off -> [ false ]
          | `Both -> [ true; false ]
        in
        let mode =
          if exhaustive then Wn_core.Inject.Exhaustive
          else Wn_core.Inject.Sampled points
        in
        let total_violations = ref 0 in
        List.iter
          (fun system ->
            List.iter
              (fun skim ->
                let config =
                  {
                    Wn_core.Inject.default_config with
                    system;
                    skim;
                    bits;
                    sample_seed = seed;
                    differential;
                    keyframe_interval;
                    delta_frames = not full_keyframes;
                    engine;
                  }
                in
                let report = Wn_core.Inject.sweep ~jobs ~mode ~config w in
                total_violations :=
                  !total_violations
                  + List.length report.Wn_core.Inject.violations;
                Format.printf "%a@?" Wn_core.Inject.pp report)
              skims)
          systems;
        if !total_violations = 0 then Ok ()
        else
          Error
            (`Msg
               (Printf.sprintf "fault-injection oracle: %d violation(s)"
                  !total_violations))
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Sweep forced outages over a benchmark's instruction boundaries \
          and check the crash-consistency oracle")
    Term.(
      term_result
        (const run $ bench_arg $ scale_arg $ bits_arg $ points_arg
       $ inject_seed_arg $ exhaustive_arg $ inj_system_arg $ inj_skim_arg
       $ differential_arg $ keyframe_arg $ full_keyframes_arg $ engine_arg
       $ jobs_arg))

(* ---------------- wn fleet ---------------- *)

let fleet_cmd =
  let benches_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"BENCH"
          ~doc:
            "Benchmark name(s); devices take configurations from the \
             benchmark x system x bits cross product round-robin.")
  in
  let devices_arg =
    Arg.(
      value & opt int Wn_fleet.Fleet.default.Wn_fleet.Fleet.devices
      & info [ "devices" ] ~docv:"N" ~doc:"Fleet size (>= 1).")
  in
  let fleet_system_arg =
    let sys_conv =
      Arg.enum [ ("clank", `Clank); ("nvp", `Nvp); ("both", `Both) ]
    in
    Arg.(
      value & opt sys_conv `Clank
      & info [ "system" ] ~docv:"SYS"
          ~doc:"Runtime model(s): $(b,clank), $(b,nvp) or $(b,both).")
  in
  let samples_arg =
    Arg.(
      value & opt int 1
      & info [ "samples" ] ~docv:"N"
          ~doc:"Input samples streamed through each device (>= 1).")
  in
  let batch_arg =
    Arg.(
      value & opt int 0
      & info [ "batch" ] ~docv:"B"
          ~doc:
            "Units per scheduled batch (0 = auto, ~256 batches).  The \
             batch partition — not the pool width — defines the \
             aggregation order, so reports are byte-identical at any \
             $(b,--jobs) for a fixed $(docv).")
  in
  let cap_arg =
    Arg.(
      value & opt float 10.0
      & info [ "cap" ] ~docv:"UF" ~doc:"Per-device capacitance in microfarads.")
  in
  let sketch_arg =
    Arg.(
      value & opt int Wn_fleet.Fleet.default.Wn_fleet.Fleet.sketch_capacity
      & info [ "sketch-capacity" ] ~docv:"K"
          ~doc:"Percentile-sketch buffer capacity (>= 8).")
  in
  let run benches scale bits system devices samples batch cap_uf sketch
      trace_name seed engine_name json jobs =
    let* jobs = require_positive "jobs" jobs in
    let* engine = find_engine engine_name in
    let* devices = require_positive "devices" devices in
    let* samples = require_positive "samples" samples in
    let* batch = require_non_negative "batch" batch in
    let* seed = require_non_negative "seed" seed in
    let* () =
      if sketch >= 8 then Ok ()
      else Error (`Msg (Printf.sprintf "--sketch-capacity must be >= 8 (got %d)" sketch))
    in
    let* () =
      if cap_uf > 0.0 then Ok () else Error (`Msg "--cap must be positive")
    in
    let* trace_class =
      match Wn_fleet.Fleet.trace_class_of_string trace_name with
      | Some t -> Ok t
      | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown trace %S (know: rf, square, constant)"
                  trace_name))
    in
    let rec find_all = function
      | [] -> Ok []
      | b :: rest -> (
          match find_bench scale b with
          | Error e -> Error e
          | Ok w -> Result.map (fun ws -> w.Workload.name :: ws) (find_all rest))
    in
    let* benchmarks = find_all benches in
    let systems =
      match system with
      | `Clank -> [ Wn_core.Intermittent.Clank ]
      | `Nvp -> [ Wn_core.Intermittent.Nvp ]
      | `Both -> [ Wn_core.Intermittent.Clank; Wn_core.Intermittent.Nvp ]
    in
    catch_compile_error @@ fun () ->
    let descriptor =
      {
        Wn_fleet.Fleet.default with
        Wn_fleet.Fleet.devices;
        benchmarks;
        systems;
        bits_list = [ bits ];
        scale;
        samples_per_device = samples;
        trace_class;
        seed;
        capacitance = cap_uf *. 1e-6;
        batch;
        sketch_capacity = sketch;
        engine;
      }
    in
    let t0 = Unix.gettimeofday () in
    let report = Wn_fleet.Fleet.run ~jobs descriptor in
    let dt = Unix.gettimeofday () -. t0 in
    (* Wall time and throughput go to stderr so stdout stays
       byte-identical across --jobs values. *)
    Printf.eprintf "[fleet: %d units in %.2fs, %.0f units/s, %d jobs]\n%!"
      report.Wn_fleet.Fleet.units dt
      (float_of_int report.Wn_fleet.Fleet.units /. Float.max dt 1e-9)
      jobs;
    if json then print_string (Wn_fleet.Fleet.to_json report)
    else Format.printf "%a@?" Wn_fleet.Fleet.pp report;
    Ok ()
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate a deployment of N intermittent devices and report \
          fleet-level quality/energy/outage/on-time distributions from \
          bounded-memory streaming aggregation")
    Term.(
      term_result
        (const run $ benches_arg $ scale_arg $ bits_arg $ fleet_system_arg
       $ devices_arg $ samples_arg $ batch_arg $ cap_arg $ sketch_arg
       $ trace_arg $ seed_arg $ engine_arg $ json_arg $ jobs_arg))

(* ---------------- wn disasm / wn source ---------------- *)

let build_compiled bench scale bits precise =
  match find_bench scale bench with
  | Error e -> Error e
  | Ok w ->
      catch_compile_error (fun () ->
          let cfg = { Workload.bits; provisioned = true } in
          let options =
            if precise then Wn_compiler.Compile.precise
            else Wn_compiler.Compile.anytime
          in
          Ok (w, Wn_compiler.Compile.compile_source ~options (w.Workload.source cfg)))

let disasm_cmd =
  let run bench scale bits precise =
    match build_compiled bench scale bits precise with
    | Error e -> Error e
    | Ok (w, compiled) ->
        Printf.printf "; %s (%s, %d-bit): %d instructions, %d bytes of code, \
                       %d bytes of data\n"
          w.Workload.name
          (if precise then "precise" else "anytime")
          bits
          (Array.length compiled.Wn_compiler.Compile.program)
          (Wn_compiler.Compile.code_size_bytes compiled)
          compiled.Wn_compiler.Compile.data_bytes;
        Format.printf "%a@?" Wn_compiler.Compile.pp_listing compiled;
        Ok ()
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Show a benchmark's compiled WN-32 assembly")
    Term.(
      term_result
        (const run $ bench_arg $ scale_arg $ bits_arg $ precise_arg))

let lint_cmd =
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit non-zero if any error-severity finding is reported.")
  in
  let run bench scale bits precise strict json =
    match build_compiled bench scale bits precise with
    | Error e -> Error e
    | Ok (w, compiled) ->
        let diags = Wn_compiler.Compile.lint compiled in
        if json then
          print_endline
            (Wn_analysis.Jsonu.diag_report
               ~extra:
                 [
                   ("benchmark", Wn_analysis.Jsonu.str w.Workload.name);
                   ( "build",
                     Wn_analysis.Jsonu.str
                       (if precise then "precise" else "anytime") );
                   ("bits", Wn_analysis.Jsonu.int bits);
                 ]
               diags)
        else
          Format.printf "%s (%s, %d-bit): %a@." w.Workload.name
            (if precise then "precise" else "anytime")
            bits Wn_analysis.Diag.pp_report diags;
        if strict && Wn_analysis.Diag.worst diags = Some Wn_analysis.Diag.Error
        then Error (`Msg "static verification failed")
        else Ok ()
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static verifier (CFG, liveness, skim safety, WAR \
          hazards, forward progress) over a benchmark's compiled program")
    Term.(
      term_result
        (const run $ bench_arg $ scale_arg $ bits_arg $ precise_arg
       $ strict_arg $ json_arg))

let verify_cmd =
  let runtime_arg =
    let sys_conv =
      Arg.enum [ ("clank", `Clank); ("nvp", `Nvp); ("skim", `Skim) ]
    in
    Arg.(
      value & opt sys_conv `Clank
      & info [ "system" ] ~docv:"SYS"
          ~doc:
            "Runtime model bounding the per-charge burn: $(b,clank) \
             (watchdog-capped epochs), $(b,nvp) (per-instruction commit) \
             or $(b,skim) (no dynamic net: the raw region WCEC must fit \
             the budget).")
  in
  let cap_arg =
    Arg.(
      value & opt float 10.0
      & info [ "cap" ] ~docv:"UF" ~doc:"Capacitance in microfarads.")
  in
  let v_on_arg =
    Arg.(
      value & opt float 2.3
      & info [ "v-on" ] ~docv:"V" ~doc:"Turn-on threshold voltage.")
  in
  let v_off_arg =
    Arg.(
      value & opt float 1.8
      & info [ "v-off" ] ~docv:"V" ~doc:"Brown-out threshold voltage.")
  in
  let watchdog_arg =
    Arg.(
      value & opt int Wn_runtime.Executor.default_clank.watchdog_period
      & info [ "watchdog" ] ~docv:"CYCLES"
          ~doc:"Clank watchdog period in cycles (ignored for other systems).")
  in
  let run bench scale bits precise system cap_uf v_on v_off watchdog json =
    let* watchdog = require_positive "watchdog" watchdog in
    let* () =
      if cap_uf > 0.0 then Ok ()
      else Error (`Msg "--cap must be positive")
    in
    let* () =
      if 0.0 < v_off && v_off < v_on then Ok ()
      else Error (`Msg "need 0 < --v-off < --v-on")
    in
    match build_compiled bench scale bits precise with
    | Error e -> Error e
    | Ok (w, compiled) ->
        let runtime =
          match system with
          | `Clank ->
              Wn_analysis.Progress.clank ~watchdog_period:watchdog ()
          | `Nvp -> Wn_analysis.Progress.nvp ()
          | `Skim -> Wn_analysis.Progress.skim_only ()
        in
        let budget =
          Wn_power.Capacitor.restart_budget
            (Wn_power.Capacitor.create ~capacitance:(cap_uf *. 1e-6) ~v_on
               ~v_off ~v_max:(Float.max v_on 2.5) ())
        in
        let report = Wn_compiler.Compile.verify ~runtime ~budget compiled in
        let diags = Wn_analysis.Progress.diagnostics report in
        if json then
          print_endline
            (Wn_analysis.Jsonu.diag_report
               ~extra:
                 [
                   ("benchmark", Wn_analysis.Jsonu.str w.Workload.name);
                   ( "build",
                     Wn_analysis.Jsonu.str
                       (if precise then "precise" else "anytime") );
                   ("bits", Wn_analysis.Jsonu.int bits);
                   ("report", Wn_analysis.Jsonu.of_progress report);
                 ]
               diags)
        else begin
          Format.printf "%s (%s, %d-bit):@.%a" w.Workload.name
            (if precise then "precise" else "anytime")
            bits Wn_analysis.Progress.pp_report report;
          Format.printf "%a@." Wn_analysis.Diag.pp_report diags
        end;
        if Wn_analysis.Diag.worst diags = Some Wn_analysis.Diag.Error then
          Error (`Msg "forward-progress verification failed")
        else Ok ()
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Statically verify forward progress: per-region worst-case \
          energy (WCEC) against the capacitor's restart budget")
    Term.(
      term_result
        (const run $ bench_arg $ scale_arg $ bits_arg $ precise_arg
       $ runtime_arg $ cap_arg $ v_on_arg $ v_off_arg $ watchdog_arg
       $ json_arg))

(* ---------------- wn compile ---------------- *)

let compile_cmd =
  let bench_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCH"
          ~doc:
            "Benchmark name (Conv2d, MatMul, MatAdd, Home, Var, NetMotion); \
             omit with $(b,--file).")
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Compile WNC source from $(docv) instead of a benchmark.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Fail on the first pass whose linted output carries an \
             error-severity finding, reporting that pass's complete \
             findings.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-after" ] ~docv:"PASS"
          ~doc:
            "Print the program as it leaves $(docv) (IR passes print \
             statements, assembly passes a listing).  See \
             $(b,--list-passes) for the names.")
  in
  let list_passes_arg =
    Arg.(
      value & flag
      & info [ "list-passes" ]
          ~doc:"List the pipeline's passes in execution order and exit.")
  in
  let no_opt_arg =
    Arg.(
      value & flag
      & info [ "no-opt" ]
          ~doc:
            "Disable the optional optimizer passes (constfold, \
             strength-reduce, licm, addr-cse); the pipeline's spine \
             still runs.")
  in
  let run bench file scale bits precise strict dump_after list_passes no_opt =
    let options =
      let base =
        if precise then Wn_compiler.Compile.precise
        else Wn_compiler.Compile.anytime
      in
      if no_opt then
        { base with Wn_compiler.Compile.passes = Wn_compiler.Compile.no_passes }
      else base
    in
    if list_passes then begin
      List.iter print_endline (Wn_compiler.Compile.pass_names options);
      Ok ()
    end
    else
      let* source =
        match (bench, file) with
        | _, Some path -> (
            match In_channel.with_open_text path In_channel.input_all with
            | s -> Ok s
            | exception Sys_error e -> Error (`Msg e))
        | Some b, None ->
            let* w = find_bench scale b in
            Ok (w.Workload.source { Workload.bits; provisioned = true })
        | None, None -> Error (`Msg "need a BENCH argument or --file")
      in
      catch_compile_error @@ fun () ->
      let compiled =
        Wn_compiler.Compile.compile_source ~options ~strict ?dump_after source
      in
      (match dump_after with
      | Some pass ->
          List.iter
            (fun (name, text) ->
              Printf.printf "; after pass %s\n%s" name text;
              if text = "" || text.[String.length text - 1] <> '\n' then
                print_newline ())
            (List.filter
               (fun (name, _) -> name = pass)
               compiled.Wn_compiler.Compile.dumps)
      | None ->
          Printf.printf "%d instructions, %d bytes of code, %d bytes of data\n"
            (Array.length compiled.Wn_compiler.Compile.program)
            (Wn_compiler.Compile.code_size_bytes compiled)
            compiled.Wn_compiler.Compile.data_bytes);
      Ok ()
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Run the pass pipeline over a benchmark or a WNC source file, \
          linting after every pass")
    Term.(
      term_result
        (const run $ bench_opt_arg $ file_arg $ scale_arg $ bits_arg
       $ precise_arg $ strict_arg $ dump_arg $ list_passes_arg $ no_opt_arg))

(* ---------------- wn insn ---------------- *)

let insn_cmd =
  let benches_arg =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"BENCH"
          ~doc:"Benchmark name(s); defaults to the whole suite.")
  in
  let check_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"BASELINE"
          ~doc:
            "Compare against the committed baseline (BASELINE_insn.json) \
             and exit non-zero if any counter retires more instructions \
             than it records.")
  in
  let run benches scale bits seed json check =
    let* _ = require_non_negative "seed" seed in
    let* ws =
      match benches with
      | [] -> Ok (Suite.all scale)
      | names ->
          List.fold_right
            (fun name acc ->
              let* ws = acc in
              let* w = find_bench scale name in
              Ok (w :: ws))
            names (Ok [])
    in
    catch_compile_error @@ fun () ->
    let report = Wn_core.Insn.measure ~seed ~bits ~scale ws in
    if json then print_string (Wn_core.Insn.json report)
    else Format.printf "%a@?" Wn_core.Insn.pp report;
    match check with
    | None -> Ok ()
    | Some path -> (
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error e -> Error (`Msg e)
        | baseline -> (
            match Wn_core.Insn.check ~baseline report with
            | [] -> Ok ()
            | regs ->
                List.iter
                  (fun (r : Wn_core.Insn.regression) ->
                    Printf.eprintf "REGRESSION %s: %d retired (baseline %d)\n"
                      r.Wn_core.Insn.key r.Wn_core.Insn.current
                      r.Wn_core.Insn.baseline)
                  regs;
                Error
                  (`Msg
                     (Printf.sprintf
                        "%d instruction-count regression(s) vs %s"
                        (List.length regs) path))))
  in
  Cmd.v
    (Cmd.info "insn"
       ~doc:
         "Measure dynamic (retired) instruction counts per benchmark — \
          precise, anytime and optimizer-off builds — plus the CI \
          gate's scenario counters")
    Term.(
      term_result
        (const run $ benches_arg $ scale_arg $ bits_arg $ seed_arg $ json_arg
       $ check_arg))

let source_cmd =
  let run bench scale bits =
    match find_bench scale bench with
    | Error e -> Error e
    | Ok w ->
        print_string (w.Workload.source { Workload.bits; provisioned = true });
        Ok ()
  in
  Cmd.v
    (Cmd.info "source" ~doc:"Show a benchmark's WNC source")
    Term.(term_result (const run $ bench_arg $ scale_arg $ bits_arg))

(* ---------------- main ---------------- *)

let () =
  let doc = "The What's Next intermittent computing architecture (HPCA 2019)" in
  let info = Cmd.info "wn" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; curve_cmd; figure_cmd; inject_cmd; fleet_cmd;
            compile_cmd; insn_cmd; disasm_cmd; lint_cmd; verify_cmd;
            source_cmd ]))
